package ncc

import (
	"repro/internal/flatmap"
	"repro/internal/sim"
)

// Step-machine forms of the package's collective primitives (see
// sim.StepProgram). Each is a faithful port of its goroutine twin —
// identical messages, randomness order, and round count — so the two forms
// are interchangeable on every engine; the algorithm packages compose these
// machines into goroutine-free ports of the paper's protocols.

// AggregateMachine is the step form of Aggregate: a binomial-tree
// convergecast to node 0 followed by a downcast, 2*ceil(log2 n) rounds.
type AggregateMachine struct {
	// Out is the aggregate, announced at every node; valid once Step
	// returned true.
	Out int64

	loop sim.Loop
	op   AggOp
	logN int
	n    int
}

// NewAggregateMachine builds the collective aggregation machine; all nodes
// must start it in the same round with the same op.
func NewAggregateMachine(env *sim.Env, value int64, op AggOp) *AggregateMachine {
	m := &AggregateMachine{Out: value, op: op, logN: sim.Log2Ceil(env.N()), n: env.N()}
	m.loop = sim.Loop{Rounds: 2 * m.logN, Send: m.send, Recv: m.recv}
	return m
}

// Step implements sim.StepProgram.
func (m *AggregateMachine) Step(env *sim.Env) bool { return m.loop.Step(env) }

func (m *AggregateMachine) send(env *sim.Env, i int) {
	if i < m.logN {
		b := i
		stride, half := 1<<(b+1), 1<<b
		if env.ID()%stride == half {
			env.SendGlobal(env.ID()-half, kindAggUp, m.Out, 0, 0, 0)
		}
		return
	}
	b := 2*m.logN - 1 - i
	stride, half := 1<<(b+1), 1<<b
	if env.ID()%stride == 0 && env.ID()+half < m.n {
		env.SendGlobal(env.ID()+half, kindAggDown, m.Out, 0, 0, 0)
	}
}

func (m *AggregateMachine) recv(env *sim.Env, in sim.Inbox, i int) {
	if i < m.logN {
		for _, gm := range in.Global {
			if gm.Kind == kindAggUp {
				m.Out = m.op.combine(m.Out, gm.F0)
			}
		}
		return
	}
	for _, gm := range in.Global {
		if gm.Kind == kindAggDown {
			m.Out = gm.F0
		}
	}
}

// BroadcastWordsMachine is the step form of BroadcastWords: binomial
// doubling of a word vector from a designated source.
type BroadcastWordsMachine struct {
	// Out is the padded word vector; valid once Step returned true (only
	// then is it guaranteed complete).
	Out []int64

	loop          sim.Loop
	n             int
	source        int
	maxWords      int
	msgs          int
	roundsPerStep int
	budget        int
	have          bool
	sendIdx       int
}

// NewBroadcastWordsMachine builds the collective broadcast machine; all
// nodes must start it in the same round with the same source and maxWords.
func NewBroadcastWordsMachine(env *sim.Env, source int, words []int64, maxWords int) *BroadcastWordsMachine {
	m := &BroadcastWordsMachine{
		n:        env.N(),
		source:   source,
		maxWords: maxWords,
		budget:   env.GlobalCap(),
		Out:      make([]int64, maxWords),
	}
	if env.ID() == source {
		copy(m.Out, words)
		m.have = true
	}
	m.msgs = (maxWords + 2) / 3 // 3 words per message, field 3 is the index
	m.roundsPerStep = (m.msgs + m.budget - 1) / m.budget
	if m.roundsPerStep == 0 {
		m.roundsPerStep = 1
	}
	m.loop = sim.Loop{Rounds: sim.Log2Ceil(m.n) * m.roundsPerStep, Send: m.send, Recv: m.recv}
	return m
}

// Step implements sim.StepProgram.
func (m *BroadcastWordsMachine) Step(env *sim.Env) bool { return m.loop.Step(env) }

func (m *BroadcastWordsMachine) offset(id int) int { return ((id-m.source)%m.n + m.n) % m.n }

func (m *BroadcastWordsMachine) send(env *sim.Env, i int) {
	b := i / m.roundsPerStep
	if i%m.roundsPerStep == 0 {
		m.sendIdx = 0
	}
	partnerOff := m.offset(env.ID()) + (1 << b)
	if m.have && m.offset(env.ID()) < (1<<b) && partnerOff < m.n {
		dst := (m.source + partnerOff) % m.n
		for s := 0; s < m.budget && m.sendIdx < m.msgs; s++ {
			j := m.sendIdx * 3
			var w0, w1, w2 int64
			w0 = m.Out[j]
			if j+1 < m.maxWords {
				w1 = m.Out[j+1]
			}
			if j+2 < m.maxWords {
				w2 = m.Out[j+2]
			}
			env.SendGlobal(dst, kindBcastWord, w0, w1, w2, int64(m.sendIdx))
			m.sendIdx++
		}
	}
}

func (m *BroadcastWordsMachine) recv(env *sim.Env, in sim.Inbox, i int) {
	for _, gm := range in.Global {
		if gm.Kind != kindBcastWord {
			continue
		}
		j := int(gm.F3) * 3
		m.Out[j] = gm.F0
		if j+1 < m.maxWords {
			m.Out[j+1] = gm.F1
		}
		if j+2 < m.maxWords {
			m.Out[j+2] = gm.F2
		}
		m.have = true
	}
}

// DisseminateMachine is the step form of Disseminate: balancing,
// replication, and local flooding, with the identical deterministic
// schedule.
type DisseminateMachine struct {
	// Out is the sorted known-token set; valid once Step returned true.
	Out []Token

	prog sim.StepProgram
}

// replicateJob mirrors Disseminate's phase 2 job record.
type replicateJob struct {
	t    Token
	left int
}

// NewDisseminateMachine builds the collective dissemination machine; all
// nodes must start it in the same round with the same k, ell and params.
func NewDisseminateMachine(env *sim.Env, mine []Token, k, ell int, params DisseminateParams) *DisseminateMachine {
	p := params.withDefaults()
	n := env.N()
	logN := sim.Log2Ceil(n)
	budget := env.GlobalCap()
	m := &DisseminateMachine{}
	var known flatmap.TripleSet
	for _, t := range mine {
		known.Add(flatmap.Triple(t))
	}
	if k <= 0 {
		m.Out = tokensOf(&known)
		m.prog = sim.Sequence()
		return m
	}

	// The deterministic schedule, identical at every node (and identical to
	// Disseminate's).
	r := isqrt(k)
	if min := 2 * logN * p.FloodSlack; r < min {
		r = min
	}
	copies := (p.ReplicationFactor*n*logN + r - 1) / r
	if copies > n {
		copies = n
	}
	heldBound := 2*((k+n-1)/n) + 8*logN
	balanceRounds := (ell + budget - 1) / budget
	replicateRounds := (heldBound*copies + budget - 1) / budget

	held := make([]Token, 0, heldBound)
	idx := 0
	var jobs []replicateJob
	ji := 0
	// Phase 3 delta buffers, rotated exactly as in Disseminate.
	var bufs [2]tokenBatch

	m.prog = sim.Sequence(
		// Phase 1: balancing.
		func(env *sim.Env) sim.StepProgram {
			return &sim.Loop{
				Rounds: balanceRounds,
				Send: func(env *sim.Env, i int) {
					for s := 0; s < budget && idx < len(mine); s++ {
						t := mine[idx]
						idx++
						env.SendGlobal(env.Rand().Intn(n), kindBalance, t.A, t.B, t.C, 0)
					}
				},
				Recv: func(env *sim.Env, in sim.Inbox, i int) {
					for _, gm := range in.Global {
						if gm.Kind == kindBalance {
							held = append(held, Token{gm.F0, gm.F1, gm.F2})
						}
					}
				},
			}
		},
		// Phase 2: replication, round-robin over the held tokens.
		func(env *sim.Env) sim.StepProgram {
			jobs = make([]replicateJob, len(held))
			for i, t := range held {
				jobs[i] = replicateJob{t: t, left: copies}
			}
			return &sim.Loop{
				Rounds: replicateRounds,
				Send: func(env *sim.Env, i int) {
					for s := 0; s < budget; s++ {
						scanned := 0
						for len(jobs) > 0 && scanned < len(jobs) {
							if jobs[ji%len(jobs)].left > 0 {
								break
							}
							ji++
							scanned++
						}
						if len(jobs) == 0 || scanned == len(jobs) {
							break
						}
						j := &jobs[ji%len(jobs)]
						j.left--
						ji++
						env.SendGlobal(env.Rand().Intn(n), kindReplicate, j.t.A, j.t.B, j.t.C, 0)
					}
				},
				Recv: func(env *sim.Env, in sim.Inbox, i int) {
					for _, gm := range in.Global {
						if gm.Kind == kindReplicate {
							known.Add(flatmap.Triple{A: gm.F0, B: gm.F1, C: gm.F2})
						}
					}
				},
			}
		},
		// Phase 3: delta flooding over the local network.
		func(env *sim.Env) sim.StepProgram {
			for _, j := range jobs {
				known.Add(flatmap.Triple(j.t))
			}
			bufs[0] = tokensOf(&known)
			return &sim.Loop{
				Rounds: r,
				Send: func(env *sim.Env, i int) {
					if len(bufs[i&1]) > 0 {
						env.BroadcastLocal(&bufs[i&1])
					}
				},
				Recv: func(env *sim.Env, in sim.Inbox, i int) {
					next := bufs[(i+1)&1][:0]
					for _, lm := range in.Local {
						ts, ok := lm.Payload.(*tokenBatch)
						if !ok {
							continue
						}
						for _, t := range *ts {
							if !known.Has(flatmap.Triple(t)) {
								known.Add(flatmap.Triple(t))
								next = append(next, t)
							}
						}
					}
					bufs[(i+1)&1] = next
				},
			}
		},
		sim.Finish(func(env *sim.Env) { m.Out = tokensOf(&known) }),
	)
	return m
}

// Step implements sim.StepProgram.
func (m *DisseminateMachine) Step(env *sim.Env) bool { return m.prog.Step(env) }

// tokenBatch is the local-mode payload of the dissemination flood: a batch
// of tokens.
type tokenBatch []Token

// PayloadWords implements sim.WordSized: each token is three words.
func (b tokenBatch) PayloadWords() int64 { return 3 * int64(len(b)) }
