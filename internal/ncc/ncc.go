// Package ncc implements the global-communication primitives the paper
// imports from prior work, as collective operations on the sim runtime:
//
//   - Aggregate (Lemma B.2, from Augustine et al. [2]): compute an
//     aggregate-distributive function (min/max/sum) of per-node values and
//     announce the result to all nodes in O(log n) rounds using only the
//     global network.
//   - BroadcastWords (used by Lemma 2.3): a designated source announces an
//     O(log^2 n)-bit value (e.g. the hash-function seed) to all nodes in
//     O~(1) rounds via binomial doubling on the global network.
//   - Disseminate (Lemma B.1, Theorem 2.1 of [3]): the token dissemination
//     protocol — k tokens, at most ell per node, become known to every node
//     in O~(sqrt(k) + ell) rounds using both communication modes.
//
// All three are collective: every node's program must call them in the same
// round, and they return after a deterministic number of rounds computed
// from parameters every node knows (n, k, ell), so lockstep is preserved.
package ncc

import (
	"sort"

	"repro/internal/flatmap"
	"repro/internal/sim"
)

// Message kinds used by this package (namespaced high to avoid colliding
// with algorithm-level kinds).
const (
	kindAggUp sim.Kind = 0x7e00 + iota
	kindAggDown
	kindBcastWord
	kindBalance
	kindReplicate
	kindPipeline
)

// AggOp selects the aggregate-distributive function (paper Lemma B.2 covers
// any such f; min, max and sum are the ones the algorithms use).
type AggOp int

// Supported aggregate operations.
const (
	AggMax AggOp = iota + 1
	AggMin
	AggSum
)

func (op AggOp) combine(a, b int64) int64 {
	switch op {
	case AggMax:
		if a >= b {
			return a
		}
		return b
	case AggMin:
		if a <= b {
			return a
		}
		return b
	default:
		return a + b
	}
}

// Aggregate computes op over every node's value and returns the result to
// all nodes. It is a collective operation taking exactly 2*ceil(log2 n)
// rounds: a binomial-tree convergecast to node 0 followed by a binomial-tree
// downcast (the NCC aggregation scheme of [2], Lemma B.2).
func Aggregate(env *sim.Env, value int64, op AggOp) int64 {
	n := env.N()
	logN := sim.Log2Ceil(n)
	acc := value

	// Convergecast: in step b, node i with i mod 2^(b+1) == 2^b sends its
	// accumulator to i - 2^b. Receivers fold.
	for b := 0; b < logN; b++ {
		stride := 1 << (b + 1)
		half := 1 << b
		if env.ID()%stride == half {
			env.SendGlobal(env.ID()-half, kindAggUp, acc, 0, 0, 0)
		}
		in := env.Step()
		for _, m := range in.Global {
			if m.Kind == kindAggUp {
				acc = op.combine(acc, m.F0)
			}
		}
	}
	// Downcast: node 0 now holds the result; reverse the tree.
	for b := logN - 1; b >= 0; b-- {
		stride := 1 << (b + 1)
		half := 1 << b
		if env.ID()%stride == 0 && env.ID()+half < n {
			env.SendGlobal(env.ID()+half, kindAggDown, acc, 0, 0, 0)
		}
		in := env.Step()
		for _, m := range in.Global {
			if m.Kind == kindAggDown {
				acc = m.F0
			}
		}
	}
	return acc
}

// BroadcastWords announces the source node's word vector to every node via
// binomial doubling over the global network. All nodes must pass the same
// source and the same maxWords (an upper bound on len(words) known to
// everyone, e.g. the O(log n) seed length of Lemma 2.3); the source's slice
// is padded to maxWords with zeros. The operation takes
// ceil(log2 n) * ceil(ceil(maxWords/3)/cap) rounds.
func BroadcastWords(env *sim.Env, source int, words []int64, maxWords int) []int64 {
	n := env.N()
	logN := sim.Log2Ceil(n)
	budget := env.GlobalCap()

	buf := make([]int64, maxWords)
	have := false
	if env.ID() == source {
		copy(buf, words)
		have = true
	}
	msgs := (maxWords + 2) / 3 // 3 words per message, field 3 is the index
	roundsPerStep := (msgs + budget - 1) / budget
	if roundsPerStep == 0 {
		roundsPerStep = 1
	}

	offset := func(id int) int { return ((id-source)%n + n) % n }

	for b := 0; b < logN; b++ {
		// Nodes with offset < 2^b are informed; each sends to offset+2^b.
		partnerOff := offset(env.ID()) + (1 << b)
		sendIdx := 0
		for r := 0; r < roundsPerStep; r++ {
			if have && offset(env.ID()) < (1<<b) && partnerOff < n {
				dst := (source + partnerOff) % n
				for s := 0; s < budget && sendIdx < msgs; s++ {
					i := sendIdx * 3
					var w0, w1, w2 int64
					w0 = buf[i]
					if i+1 < maxWords {
						w1 = buf[i+1]
					}
					if i+2 < maxWords {
						w2 = buf[i+2]
					}
					env.SendGlobal(dst, kindBcastWord, w0, w1, w2, int64(sendIdx))
					sendIdx++
				}
			}
			in := env.Step()
			for _, m := range in.Global {
				if m.Kind != kindBcastWord {
					continue
				}
				i := int(m.F3) * 3
				buf[i] = m.F0
				if i+1 < maxWords {
					buf[i+1] = m.F1
				}
				if i+2 < maxWords {
					buf[i+2] = m.F2
				}
				have = true
			}
		}
	}
	return buf
}

// Token is one O(log n)-bit token of the dissemination problem: three
// log n-bit words, enough for every use in the paper (edge (u,v,w) triples,
// representative labels (d, id(v), id(r)), distance labels).
type Token struct {
	A, B, C int64
}

// DisseminateParams tunes the w.h.p. constants of the protocol. Zero values
// select defaults that hold at the scales the test suite exercises.
type DisseminateParams struct {
	// ReplicationFactor scales m = ReplicationFactor * n * logN / r, the
	// number of random copies placed per token. Default 2.
	ReplicationFactor int
	// FloodSlack scales the local flood radius r beyond ceil(sqrt(k)).
	// Default 1 (radius max(sqrt(k), 2 logN)).
	FloodSlack int
}

func (p DisseminateParams) withDefaults() DisseminateParams {
	if p.ReplicationFactor <= 0 {
		p.ReplicationFactor = 2
	}
	if p.FloodSlack <= 0 {
		p.FloodSlack = 1
	}
	return p
}

// Disseminate implements the token dissemination protocol of [3]
// (Lemma B.1): all k tokens become known to every node. mine holds this
// node's initial tokens; k and ell are globally known upper bounds on the
// total token count and the per-node count. The protocol is collective and
// takes a deterministic O~(sqrt(k) + ell) number of rounds:
//
//  1. Balancing: every node sends each of its tokens to a uniformly random
//     node, paced at the cap — ceil(ell/cap) rounds. Afterwards each node
//     holds O(k/n + log n) tokens w.h.p.
//  2. Replication: each holder sends each held token to m ~ n*log(n)/r
//     uniformly random nodes, paced at the cap. Since every radius-r ball
//     of a connected graph contains more than r nodes, every ball then
//     holds a copy of every token w.h.p.
//  3. Local flooding: r rounds of delta-flooding over G deliver every token
//     to every node.
//
// With r = Theta(sqrt(k)) the total is O~(ell + k/r + r) = O~(sqrt(k)+ell).
func Disseminate(env *sim.Env, mine []Token, k, ell int, params DisseminateParams) []Token {
	p := params.withDefaults()
	n := env.N()
	logN := sim.Log2Ceil(n)
	budget := env.GlobalCap()
	var known flatmap.TripleSet
	for _, t := range mine {
		known.Add(flatmap.Triple(t))
	}
	if k <= 0 {
		return tokensOf(&known)
	}

	// Deterministic schedule, identical at every node.
	r := isqrt(k)
	if min := 2 * logN * p.FloodSlack; r < min {
		r = min
	}
	m := (p.ReplicationFactor*n*logN + r - 1) / r
	if m > n {
		m = n
	}
	heldBound := 2*((k+n-1)/n) + 8*logN
	balanceRounds := (ell + budget - 1) / budget
	replicateRounds := (heldBound*m + budget - 1) / budget

	// Phase 1: balancing.
	held := make([]Token, 0, heldBound)
	idx := 0
	for round := 0; round < balanceRounds; round++ {
		for s := 0; s < budget && idx < len(mine); s++ {
			t := mine[idx]
			idx++
			env.SendGlobal(env.Rand().Intn(n), kindBalance, t.A, t.B, t.C, 0)
		}
		in := env.Step()
		for _, gm := range in.Global {
			if gm.Kind == kindBalance {
				held = append(held, Token{gm.F0, gm.F1, gm.F2})
			}
		}
	}

	// Phase 2: replication. Each held token goes to m random nodes. Jobs
	// beyond the schedule (a node holding more than heldBound, which is a
	// low-probability event) are truncated; round-robin over tokens keeps
	// the truncation proportional.
	type job struct {
		t    Token
		left int
	}
	jobs := make([]job, len(held))
	for i, t := range held {
		jobs[i] = job{t: t, left: m}
	}
	ji := 0
	for round := 0; round < replicateRounds; round++ {
		for s := 0; s < budget; s++ {
			// Advance to the next job with sends left.
			scanned := 0
			for len(jobs) > 0 && scanned < len(jobs) {
				if jobs[ji%len(jobs)].left > 0 {
					break
				}
				ji++
				scanned++
			}
			if len(jobs) == 0 || scanned == len(jobs) {
				break
			}
			j := &jobs[ji%len(jobs)]
			j.left--
			ji++
			env.SendGlobal(env.Rand().Intn(n), kindReplicate, j.t.A, j.t.B, j.t.C, 0)
		}
		in := env.Step()
		for _, gm := range in.Global {
			if gm.Kind == kindReplicate {
				known.Add(flatmap.Triple{A: gm.F0, B: gm.F1, C: gm.F2})
			}
		}
	}
	// Tokens this node held also count as known.
	for _, j := range jobs {
		known.Add(flatmap.Triple(j.t))
	}

	// Phase 3: delta flooding over the local network for r rounds. The two
	// delta buffers rotate (see skeleton.LimitedExplore for the ownership
	// argument), so a staged batch is rewritten only after every reader has
	// taken the next barrier and steady-state flood rounds are
	// allocation-free.
	var bufs [2]tokenBatch
	bufs[0] = tokensOf(&known)
	for round := 0; round < r; round++ {
		if len(bufs[round&1]) > 0 {
			env.BroadcastLocal(&bufs[round&1])
		}
		in := env.Step()
		next := bufs[(round+1)&1][:0]
		for _, lm := range in.Local {
			ts, ok := lm.Payload.(*tokenBatch)
			if !ok {
				continue
			}
			for _, t := range *ts {
				if !known.Has(flatmap.Triple(t)) {
					known.Add(flatmap.Triple(t))
					next = append(next, t)
				}
			}
		}
		bufs[(round+1)&1] = next
	}
	return tokensOf(&known)
}

// tokensOf returns the sorted token set for deterministic output.
func tokensOf(set *flatmap.TripleSet) []Token {
	out := make([]Token, 0, set.Len())
	for _, tr := range set.AppendAll(nil) {
		out = append(out, Token(tr))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		return out[i].C < out[j].C
	})
	return out
}

// isqrt returns ceil(sqrt(x)) for x >= 0.
func isqrt(x int) int {
	if x <= 0 {
		return 0
	}
	r := 1
	for r*r < x {
		r++
	}
	return r
}
