package ncc

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

var stepEngines = []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep}

// TestAggregateMachineMatches proves the aggregation machine byte-identical
// to Aggregate on every engine.
func TestAggregateMachineMatches(t *testing.T) {
	g := graph.Grid(5, 7)
	for _, op := range []AggOp{AggMax, AggMin, AggSum} {
		want := make([]int64, g.N())
		wantM, err := sim.Run(g, sim.Config{Seed: 5, Engine: sim.EngineLegacy}, func(env *sim.Env) {
			want[env.ID()] = Aggregate(env, int64(env.ID()*3%17), op)
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range stepEngines {
			got := make([]int64, g.N())
			gotM, err := sim.RunStep(g, sim.Config{Seed: 5, Engine: eng}, func(env *sim.Env) sim.StepProgram {
				m := NewAggregateMachine(env, int64(env.ID()*3%17), op)
				return sim.Sequence(
					func(*sim.Env) sim.StepProgram { return m },
					sim.Finish(func(env *sim.Env) { got[env.ID()] = m.Out }),
				)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("op=%v engine=%s: results differ", op, eng)
			}
			if wantM != gotM {
				t.Errorf("op=%v engine=%s: metrics differ: %+v vs %+v", op, eng, wantM, gotM)
			}
		}
	}
}

// TestBroadcastWordsMachineMatches proves the broadcast machine
// byte-identical to BroadcastWords on every engine.
func TestBroadcastWordsMachineMatches(t *testing.T) {
	g := graph.Path(19)
	words := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	const maxWords = 12
	want := make([][]int64, g.N())
	wantM, err := sim.Run(g, sim.Config{Seed: 6, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		var w []int64
		if env.ID() == 2 {
			w = words
		}
		want[env.ID()] = BroadcastWords(env, 2, w, maxWords)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range stepEngines {
		got := make([][]int64, g.N())
		gotM, err := sim.RunStep(g, sim.Config{Seed: 6, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			var w []int64
			if env.ID() == 2 {
				w = words
			}
			m := NewBroadcastWordsMachine(env, 2, w, maxWords)
			return sim.Sequence(
				func(*sim.Env) sim.StepProgram { return m },
				sim.Finish(func(env *sim.Env) { got[env.ID()] = m.Out }),
			)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: word vectors differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}

// TestDisseminateMachineMatches proves the dissemination machine
// byte-identical to Disseminate on every engine.
func TestDisseminateMachineMatches(t *testing.T) {
	g := graph.Grid(6, 6)
	mineOf := func(id int) []Token {
		if id%5 != 0 {
			return nil
		}
		return []Token{{A: int64(id), B: int64(id * 2), C: 7}, {A: int64(id), B: int64(id*2 + 1), C: 8}}
	}
	k, ell := 2*(g.N()/5+1), 2
	want := make([][]Token, g.N())
	wantM, err := sim.Run(g, sim.Config{Seed: 7, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		want[env.ID()] = Disseminate(env, mineOf(env.ID()), k, ell, DisseminateParams{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range stepEngines {
		got := make([][]Token, g.N())
		gotM, err := sim.RunStep(g, sim.Config{Seed: 7, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			m := NewDisseminateMachine(env, mineOf(env.ID()), k, ell, DisseminateParams{})
			return sim.Sequence(
				func(*sim.Env) sim.StepProgram { return m },
				sim.Finish(func(env *sim.Env) { got[env.ID()] = m.Out }),
			)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: token sets differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}
