package ncc

import (
	"repro/internal/flatmap"
	"repro/internal/sim"
)

// PipelinedBroadcast is the NCC-ONLY token broadcast used as the
// global-mode-only baseline of the paper's §1 model comparison ("if only
// the NCC model is used, the (approximate) APSP problem clearly requires
// Ω~(n) rounds"): k token slots are broadcast to every node using only the
// global network, one binomial-doubling wave per slot, pipelined so that
// wave b of slot t runs in round t+b. Each node sends at most one message
// per in-flight slot per round — at most ceil(log2 n) concurrent slots —
// which exactly fits the model's O(log n) cap.
//
// Slots are a fixed n × ell grid: slot t = v*ell + j carries node v's j-th
// token (absent tokens idle their slot). Rounds: n*ell + ceil(log2 n).
// The Θ(n·ell) cost is the point of the baseline: without the local mode
// there is no replication shortcut, so it is slower than Lemma B.1's
// O~(sqrt(k)) by roughly sqrt(k) — the HYBRID advantage E11 measures.
func PipelinedBroadcast(env *sim.Env, mine []Token, ell int) []Token {
	n := env.N()
	logN := sim.Log2Ceil(n)
	slots := n * ell
	totalRounds := slots + logN

	var known flatmap.TripleSet
	// haveSlot maps slot t to its token, if this node knows it.
	var haveSlot flatmap.Map[Token]
	for j, t := range mine {
		if j >= ell {
			break
		}
		slot := env.ID()*ell + j
		haveSlot.Put(uint64(slot), t)
		known.Add(flatmap.Triple(t))
	}

	offset := func(id, src int) int { return ((id-src)%n + n) % n }

	for r := 0; r < totalRounds; r++ {
		// Slot t is in doubling phase b = r - t for 0 <= b < logN.
		lo := r - logN + 1
		if lo < 0 {
			lo = 0
		}
		for t := lo; t <= r && t < slots; t++ {
			b := r - t
			src := t / ell
			tok, have := haveSlot.Get(uint64(t))
			if !have {
				continue
			}
			off := offset(env.ID(), src)
			if off >= (1 << b) {
				continue
			}
			partner := off + (1 << b)
			if partner < n {
				env.SendGlobal((src+partner)%n, kindPipeline, tok.A, tok.B, tok.C, int64(t))
			}
		}
		in := env.Step()
		for _, gm := range in.Global {
			if gm.Kind != kindPipeline {
				continue
			}
			tok := Token{A: gm.F0, B: gm.F1, C: gm.F2}
			haveSlot.Put(uint64(gm.F3), tok)
			known.Add(flatmap.Triple(tok))
		}
	}
	return tokensOf(&known)
}
