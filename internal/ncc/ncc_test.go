package ncc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
)

func TestAggregateOps(t *testing.T) {
	tests := []struct {
		name string
		n    int
		op   AggOp
		val  func(id int) int64
		want int64
	}{
		{"max", 17, AggMax, func(id int) int64 { return int64(id * 3) }, 48},
		{"min", 17, AggMin, func(id int) int64 { return int64(100 - id) }, 84},
		{"sum", 10, AggSum, func(id int) int64 { return int64(id) }, 45},
		{"max single", 1, AggMax, func(id int) int64 { return 7 }, 7},
		{"sum power of two", 16, AggSum, func(id int) int64 { return 1 }, 16},
		{"max negative", 9, AggMax, func(id int) int64 { return int64(-id - 1) }, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := graph.Path(tt.n)
			got := make([]int64, tt.n)
			_, err := sim.Run(g, sim.Config{Seed: 1}, func(env *sim.Env) {
				got[env.ID()] = Aggregate(env, tt.val(env.ID()), tt.op)
			})
			if err != nil {
				t.Fatal(err)
			}
			for id, v := range got {
				if v != tt.want {
					t.Fatalf("node %d got %d, want %d", id, v, tt.want)
				}
			}
		})
	}
}

func TestAggregateRoundsLogarithmic(t *testing.T) {
	g := graph.Path(100)
	m, err := sim.Run(g, sim.Config{Seed: 1}, func(env *sim.Env) {
		Aggregate(env, int64(env.ID()), AggMax)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * sim.Log2Ceil(100)
	if m.Rounds != want {
		t.Fatalf("Rounds = %d, want %d (2 ceil(log2 n))", m.Rounds, want)
	}
}

func TestAggregateUsesOnlyGlobalMode(t *testing.T) {
	g := graph.Path(32)
	m, err := sim.Run(g, sim.Config{Seed: 1}, func(env *sim.Env) {
		Aggregate(env, 1, AggSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalMsgs != 0 {
		t.Fatalf("aggregation used %d local messages; Lemma B.2 is NCC-only", m.LocalMsgs)
	}
}

func TestBroadcastWords(t *testing.T) {
	tests := []struct {
		name     string
		n        int
		source   int
		words    []int64
		maxWords int
	}{
		{"single word", 13, 0, []int64{42}, 1},
		{"seed sized", 20, 7, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 12},
		{"padded", 8, 3, []int64{9, 9}, 5},
		{"two nodes", 2, 1, []int64{-5, 7, 11}, 3},
		{"large vector", 33, 32, seq(40), 40},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := graph.Path(tt.n)
			got := make([][]int64, tt.n)
			_, err := sim.Run(g, sim.Config{Seed: 2}, func(env *sim.Env) {
				var w []int64
				if env.ID() == tt.source {
					w = tt.words
				}
				got[env.ID()] = BroadcastWords(env, tt.source, w, tt.maxWords)
			})
			if err != nil {
				t.Fatal(err)
			}
			want := make([]int64, tt.maxWords)
			copy(want, tt.words)
			for id, w := range got {
				if len(w) != tt.maxWords {
					t.Fatalf("node %d got %d words, want %d", id, len(w), tt.maxWords)
				}
				for i := range w {
					if w[i] != want[i] {
						t.Fatalf("node %d word %d = %d, want %d", id, i, w[i], want[i])
					}
				}
			}
		})
	}
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i * i)
	}
	return out
}

func TestBroadcastWordsSeedCost(t *testing.T) {
	// An O(log^2 n)-bit seed (logN words) must broadcast in O(log n) rounds.
	const n = 256
	g := graph.Path(n)
	logN := sim.Log2Ceil(n)
	m, err := sim.Run(g, sim.Config{Seed: 3}, func(env *sim.Env) {
		BroadcastWords(env, 0, seq(logN), logN)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds > 2*logN {
		t.Fatalf("seed broadcast took %d rounds, want <= %d", m.Rounds, 2*logN)
	}
}

func disseminateOnce(t *testing.T, g *graph.Graph, tokensPerNode func(id int) []Token, k, ell int, seed int64) ([][]Token, sim.Metrics) {
	t.Helper()
	out := make([][]Token, g.N())
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		out[env.ID()] = Disseminate(env, tokensPerNode(env.ID()), k, ell, DisseminateParams{})
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

func TestDisseminateAllLearnAll(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(60)},
		{"grid", graph.Grid(8, 8)},
		{"sparse", graph.SparseConnected(80, 1, rng)},
		{"barbell", graph.Barbell(20, 10)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := tt.g.N()
			// Tokens concentrated at 5 source nodes, 8 tokens each.
			const perSource, nSources = 8, 5
			k := perSource * nSources
			mk := func(id int) []Token {
				if id >= nSources {
					return nil
				}
				out := make([]Token, perSource)
				for i := range out {
					out[i] = Token{A: int64(id), B: int64(i), C: int64(id*1000 + i)}
				}
				return out
			}
			got, _ := disseminateOnce(t, tt.g, mk, k, perSource, 7)
			for id := 0; id < n; id++ {
				if len(got[id]) != k {
					t.Fatalf("node %d knows %d tokens, want %d", id, len(got[id]), k)
				}
			}
			// Spot-check content at an arbitrary node.
			want := map[Token]bool{}
			for s := 0; s < nSources; s++ {
				for _, tok := range mk(s) {
					want[tok] = true
				}
			}
			for _, tok := range got[n-1] {
				if !want[tok] {
					t.Fatalf("node %d learned unexpected token %+v", n-1, tok)
				}
			}
		})
	}
}

func TestDisseminateZeroTokens(t *testing.T) {
	g := graph.Path(10)
	got, m := disseminateOnce(t, g, func(int) []Token { return nil }, 0, 0, 9)
	for id := range got {
		if len(got[id]) != 0 {
			t.Fatalf("node %d has %d tokens, want 0", id, len(got[id]))
		}
	}
	if m.Rounds != 0 {
		t.Fatalf("zero-token dissemination took %d rounds", m.Rounds)
	}
}

func TestDisseminateSingleToken(t *testing.T) {
	g := graph.Grid(6, 6)
	got, _ := disseminateOnce(t, g, func(id int) []Token {
		if id == 17 {
			return []Token{{A: 5, B: 6, C: 7}}
		}
		return nil
	}, 1, 1, 10)
	for id := range got {
		if len(got[id]) != 1 || got[id][0] != (Token{5, 6, 7}) {
			t.Fatalf("node %d = %v, want the single token", id, got[id])
		}
	}
}

func TestDisseminateScalingSqrtK(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling check skipped in -short mode")
	}
	// Rounds should grow like sqrt(k) once k dominates the log terms:
	// quadrupling k should roughly double rounds, and must not quadruple.
	g := graph.Grid(16, 16)
	n := g.N()
	rounds := map[int]int{}
	for _, k := range []int{64, 256, 1024} {
		per := (k + n - 1) / n
		mk := func(id int) []Token {
			out := []Token{}
			for i := 0; i < per; i++ {
				t := id*per + i
				if t < k {
					out = append(out, Token{A: int64(t), B: 0, C: 0})
				}
			}
			return out
		}
		got, m := disseminateOnce(t, g, mk, k, per, 11)
		for id := range got {
			if len(got[id]) != k {
				t.Fatalf("k=%d node %d learned %d", k, id, len(got[id]))
			}
		}
		rounds[k] = m.Rounds
	}
	r64, r1024 := float64(rounds[64]), float64(rounds[1024])
	// sqrt scaling predicts x4; allow up to x8 for log factors, and require
	// clearly sub-linear growth (< x16).
	if r1024/r64 > 8 {
		t.Fatalf("rounds grew from %v to %v for 16x tokens; want ~4x (sqrt scaling)", r64, r1024)
	}
}

func TestDisseminateRecvLoadLogarithmic(t *testing.T) {
	// Lemma-D.2-style check: random targets keep the max receive load near
	// the cap.
	g := graph.Grid(10, 10)
	n := g.N()
	k := 400
	per := k / n
	mk := func(id int) []Token {
		out := make([]Token, per)
		for i := range out {
			out[i] = Token{A: int64(id*per + i)}
		}
		return out
	}
	_, m := disseminateOnce(t, g, mk, k, per, 13)
	logN := sim.Log2Ceil(n)
	if m.MaxGlobalRecv > 6*logN {
		t.Fatalf("max receive load %d exceeds 6 log n = %d", m.MaxGlobalRecv, 6*logN)
	}
}

// Property: aggregation result equals the sequential fold for random values.
func TestQuickAggregateMatchesSequential(t *testing.T) {
	f := func(seed int64, nRaw uint8, opRaw uint8) bool {
		n := 2 + int(nRaw%30)
		op := AggOp(1 + opRaw%3)
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(2001) - 1000)
		}
		want := vals[0]
		for _, v := range vals[1:] {
			want = op.combine(want, v)
		}
		g := graph.Path(n)
		got := make([]int64, n)
		_, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
			got[env.ID()] = Aggregate(env, vals[env.ID()], op)
		})
		if err != nil {
			return false
		}
		for _, v := range got {
			if v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIsqrt(t *testing.T) {
	for x := 0; x <= 200; x++ {
		got := isqrt(x)
		want := int(math.Ceil(math.Sqrt(float64(x))))
		if got != want {
			t.Fatalf("isqrt(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestPipelinedBroadcastNCCOnly(t *testing.T) {
	// All nodes learn all tokens using zero local messages, in Θ(n·ell)
	// rounds — the global-only baseline of E11.
	g := graph.Path(24)
	n := g.N()
	out := make([][]Token, n)
	m, err := sim.Run(g, sim.Config{Seed: 31}, func(env *sim.Env) {
		var mine []Token
		if env.ID()%3 == 0 {
			mine = []Token{{A: int64(env.ID()), B: 7, C: 9}}
		}
		out[env.ID()] = PipelinedBroadcast(env, mine, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalMsgs != 0 {
		t.Fatalf("NCC-only broadcast used %d local messages", m.LocalMsgs)
	}
	wantCount := (n + 2) / 3
	for v := 0; v < n; v++ {
		if len(out[v]) != wantCount {
			t.Fatalf("node %d knows %d tokens, want %d", v, len(out[v]), wantCount)
		}
	}
	if m.Rounds != n*1+sim.Log2Ceil(n) {
		t.Fatalf("Rounds = %d, want n*ell+logN = %d", m.Rounds, n+sim.Log2Ceil(n))
	}
}

func TestPipelinedBroadcastMultiplePerNode(t *testing.T) {
	g := graph.Path(10)
	n := g.N()
	const ell = 3
	out := make([][]Token, n)
	_, err := sim.Run(g, sim.Config{Seed: 33}, func(env *sim.Env) {
		mine := make([]Token, ell)
		for j := range mine {
			mine[j] = Token{A: int64(env.ID()), B: int64(j), C: 1}
		}
		out[env.ID()] = PipelinedBroadcast(env, mine, ell)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if len(out[v]) != n*ell {
			t.Fatalf("node %d knows %d tokens, want %d", v, len(out[v]), n*ell)
		}
	}
}

// Failure injection: understating k (the global token bound) shortens the
// schedule but must terminate and still deliver to most nodes; overstating
// k only adds rounds. Termination and no-panic are the contract.
func TestDisseminateMisdeclaredK(t *testing.T) {
	g := graph.Grid(6, 6)
	n := g.N()
	mk := func(id int) []Token {
		if id < 8 {
			return []Token{{A: int64(id)}}
		}
		return nil
	}
	for _, declared := range []int{4, 8, 32} { // true k = 8
		out := make([][]Token, n)
		_, err := sim.Run(g, sim.Config{Seed: int64(declared)}, func(env *sim.Env) {
			out[env.ID()] = Disseminate(env, mk(env.ID()), declared, 1, DisseminateParams{})
		})
		if err != nil {
			t.Fatalf("declared k=%d: %v", declared, err)
		}
		if declared >= 8 {
			for v := 0; v < n; v++ {
				if len(out[v]) != 8 {
					t.Fatalf("declared k=%d: node %d knows %d tokens, want 8", declared, v, len(out[v]))
				}
			}
		}
	}
}
