// Connect-mode end-to-end tests: real pre-started worker OS processes in
// listen mode on TCP loopback, a coordinator that dials them instead of
// spawning anything, and the legacy engine as the correctness oracle —
// the full cross-machine deployment shape, minus the machine boundary.
package hybrid_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	hybrid "repro"
	"repro/internal/dist"
)

// startWorkerProc pre-starts one listen-mode worker OS process (a re-exec
// of the test binary, hijacked by the internal/dist env hook) pinned to
// the given shard, and returns its announced dialable address.
func startWorkerProc(t *testing.T, shard int) (string, *exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"HYBRID_DIST_LISTEN=tcp:127.0.0.1:0",
		fmt.Sprintf("HYBRID_DIST_SHARD=%d", shard),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line := <-lines:
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[0] != "HYBRID_DIST_LISTENING" {
			t.Fatalf("worker %d announcement = %q", shard, line)
		}
		return fields[1], cmd
	case <-time.After(10 * time.Second):
		t.Fatalf("worker %d never announced its listen address", shard)
		return "", nil
	}
}

// TestDistConnectProcessWorkers runs an APSP through a coordinator
// connected to two pre-started worker processes over TCP — pipelining
// window above 1 — and requires byte-identical distances and Metrics
// against the legacy oracle.
func TestDistConnectProcessWorkers(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	oracle, err := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithEngine(hybrid.EngineLegacy)).APSP()
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}

	addr0, _ := startWorkerProc(t, 0)
	addr1, _ := startWorkerProc(t, 1)
	res, err := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithEngine(hybrid.EngineDist),
		hybrid.WithDistConnect(addr0, addr1), hybrid.WithDistWindow(3)).APSP()
	if err != nil {
		t.Fatalf("connect-mode dist: %v", err)
	}
	if !reflect.DeepEqual(oracle.Dist, res.Dist) {
		t.Error("connect-mode distances diverge from legacy oracle")
	}
	if oracle.Metrics != res.Metrics {
		t.Errorf("connect-mode metrics differ: legacy %+v dist %+v", oracle.Metrics, res.Metrics)
	}
}

// TestDistConnectRemoteKillRedial is the connect-mode kill-replay: the
// KillWorker fault severs the connection to a remote worker process
// mid-run. The process itself survives and keeps listening, so the
// coordinator must re-dial it, replay the in-flight rounds, and finish
// byte-identical to the oracle.
func TestDistConnectRemoteKillRedial(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	oracle, err := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithEngine(hybrid.EngineLegacy)).APSP()
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}

	addr0, _ := startWorkerProc(t, 0)
	addr1, _ := startWorkerProc(t, 1)
	faults := dist.NewFaults().KillWorker(1, 12)
	opts := dist.WithFaults(faults)
	res, err := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithEngine(hybrid.EngineDist),
		hybrid.WithDistOptions(opts), hybrid.WithDistConnect(addr0, addr1),
		hybrid.WithDistWindow(2)).APSP()
	if err != nil {
		t.Fatalf("connect-mode dist with kill: %v", err)
	}
	st := faults.Stats()
	if st.Killed != 1 || st.Respawns < 1 {
		t.Fatalf("fault stats %+v, want 1 kill and >= 1 re-dial", st)
	}
	if !reflect.DeepEqual(oracle.Dist, res.Dist) {
		t.Error("kill + re-dial run diverges from legacy oracle")
	}
	if oracle.Metrics != res.Metrics {
		t.Errorf("kill + re-dial metrics differ: legacy %+v dist %+v", oracle.Metrics, res.Metrics)
	}
}

// TestDistConnectWorkerProcessGone kills a remote worker PROCESS mid-run
// (not just its connection). The coordinator's re-dial has nowhere to go,
// so the run must end promptly — either a clean "worker gone" abort or,
// if the kill raced past the last global round, a byte-identical success.
// What it must never do is hang.
func TestDistConnectWorkerProcessGone(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	oracle, err := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithEngine(hybrid.EngineLegacy)).APSP()
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}

	addr0, _ := startWorkerProc(t, 0)
	addr1, proc1 := startWorkerProc(t, 1)
	// Sever the connection at a mid-run round AND take the process down,
	// so the re-dial path finds a dead address.
	faults := dist.NewFaults().KillWorker(1, 12)
	opts := dist.WithFaults(faults)
	opts.FrameTimeout = 2 * time.Second
	go func() {
		// Kill the OS process as soon as the fault plan has severed the
		// connection; until then the run proceeds normally.
		for i := 0; i < 400; i++ {
			if faults.Stats().Killed > 0 {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		proc1.Process.Kill()
	}()

	type result struct {
		res *hybrid.APSPResult
		err error
	}
	done := make(chan result, 1)
	go func() {
		res, err := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithEngine(hybrid.EngineDist),
			hybrid.WithDistOptions(opts), hybrid.WithDistConnect(addr0, addr1)).APSP()
		done <- result{res, err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			// The process kill raced past the failure window (the re-dial
			// won, or the run finished first): the result must be exact.
			if !reflect.DeepEqual(oracle.Dist, r.res.Dist) {
				t.Error("run succeeded despite process kill but diverges from oracle")
			}
			return
		}
		if !strings.Contains(r.err.Error(), "dist:") {
			t.Fatalf("err = %v, want a dist-layer abort", r.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator hung after remote worker process died")
	}
}
