// Package hybrid is a Go implementation of the HYBRID network model and of
// the shortest-path and diameter algorithms of Kuhn & Schneider,
// "Computing Shortest Paths and Diameter in the Hybrid Network Model"
// (PODC 2020), built on the model of Augustine et al. (SODA 2020).
//
// The HYBRID model couples two communication modes over a node set
// {0..n-1}: a LOCAL mode with unbounded bandwidth along the edges of a
// local graph G, and an NCC-style global mode in which every node may send
// O(log n) messages of O(log n) bits per round to arbitrary nodes. The
// package runs real message-passing node programs under a synchronous
// round barrier and reports the paper's cost measures: rounds, global
// messages, per-round load. Four interchangeable round engines execute
// the programs (WithEngine); every algorithm is exported as a pipeline
// implementing both execution forms (see sim.Pipeline), so all of them run
// step-native on the goroutine-free step engine — all engines produce
// byte-identical results and Metrics for a fixed seed, including the
// multi-process distributed engine (EngineDist), which routes every
// global message through per-shard worker OS processes over a checksummed
// wire protocol.
// ARCHITECTURE.md documents the engine designs, the pipeline contract, and
// when to pick which engine.
//
// Results implemented (all exact/approximation guarantees are verified by
// the test suite against sequential ground truth):
//
//   - Theorem 1.1: exact APSP in O~(sqrt n) rounds — Network.APSP.
//   - The O~(n^(2/3)) APSP of Augustine et al. it improves on —
//     Network.APSPBaseline.
//   - Theorem 2.2: the token routing protocol — Network.TokenRouting.
//   - Theorem 1.2 / Corollaries 4.6-4.8: approximate k-SSP —
//     Network.KSSP with the Cor46/Cor47/Cor48/KSSPRealMM spec values.
//   - Theorem 1.3 / Corollary 4.9: exact SSSP in O~(n^(2/5)) — Network.SSSP.
//   - Theorem 1.4 / Corollaries 5.2-5.3: diameter approximation —
//     Network.Diameter with the DiamCor52/DiamCor53/DiamRealMM spec values.
//   - Theorems 1.5-1.6: the lower-bound constructions (Figures 1-2) with
//     machine-checked dichotomy lemmas — see internal/lowerbound and the
//     examples/lowerbound program.
//
// Quickstart:
//
//	g := hybrid.GridGraph(16, 16)
//	net := hybrid.New(g, hybrid.WithSeed(1))
//	res, err := net.APSP()
//	// res.Dist[u][v] is the exact distance; res.Metrics.Rounds the cost.
//
// A Network also holds a per-instance run context: routing sessions
// (helper families, hash) are cached across calls keyed by their instance
// parameters, so repeated runs on one Network — sweeps, re-queries,
// multi-phase workloads — skip most of the routing setup rounds. Runs on
// one Network must be sequential (they share the cache).
//
// For the serving side of the paper's IP-routing application — a
// long-lived process answering distance/route queries from resident APSP
// and next-hop tables over HTTP — see cmd/hybridserve and ARCHITECTURE.md's
// "Compute vs serve" section.
package hybrid

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/clique"
	"repro/internal/diameter"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/helpers"
	"repro/internal/hybridapsp"
	"repro/internal/kssp"
	"repro/internal/persist"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// Metrics is the per-run cost report (rounds, message counts, peak loads).
type Metrics = sim.Metrics

// Engine selects the round-engine implementation executing the node
// programs; see WithEngine.
type Engine = sim.Engine

const (
	// EngineSharded is the default engine (sim v2): per-shard message
	// staging, worker-pool delivery, preallocated and reused inboxes.
	EngineSharded = sim.EngineSharded
	// EngineLegacy is the original goroutine-per-node engine with a single
	// delivery coordinator. It is slower but maximally simple, and is kept
	// as a differential-testing oracle: for any fixed seed all engines
	// produce byte-identical results and Metrics.
	EngineLegacy = sim.EngineLegacy
	// EngineStep is the goroutine-free engine (sim v3): each node runs as
	// an explicit resumable state machine and the round loop itself is the
	// barrier, removing the scheduler wake/park cost that dominates large
	// runs. Every facade algorithm runs step-native machines on it (the
	// pipeline contract requires both execution forms), making it the
	// fastest engine on large inputs. See ARCHITECTURE.md for the design
	// and measured numbers.
	EngineStep = sim.EngineStep
	// EngineDist is the multi-process distributed engine (sim v4): node
	// programs step in the coordinator, but every global-mode message is
	// routed through its destination shard's worker OS process over the
	// internal/dist wire protocol (unix sockets by default) with
	// per-frame checksums, timeouts, bounded retries, heartbeats, and
	// kill/respawn/replay. It is the slowest engine — every round pays
	// real serialization and socket round trips — and exists as the
	// message-passing deployment shape of the HYBRID model, validated
	// byte-identical against the in-process engines. Configure with
	// WithWorkers and WithDistOptions.
	EngineDist = sim.EngineDist
)

// DistOptions tunes EngineDist's transport and robustness envelope
// (timeouts, retries, transport, heartbeats, fault injection); it is an
// alias for the dist package's Options. Tests inject faults via
// WithDistOptions(dist.WithFaults(...)).
type DistOptions = dist.Options

// Network wraps a local communication graph with run configuration and the
// per-instance run context (the routing session cache). Runs on one
// Network must be sequential; create separate Networks for concurrent
// workloads.
type Network struct {
	g         *graph.Graph
	cfg       sim.Config
	sessions  *routing.SessionCache
	skeletons *skeleton.ResultCache
	clusters  *helpers.ClusterCache
	cacheDir  string
}

// Option configures a Network.
type Option func(*Network)

// WithSeed roots all of the run's randomness (fully reproducible runs).
func WithSeed(seed int64) Option {
	return func(nw *Network) { nw.cfg.Seed = seed }
}

// WithEngine selects the round engine (default EngineSharded). Engines
// change wall-clock speed only: results and Metrics are engine-independent
// for a fixed seed. EngineStep is the fastest on large inputs (no
// goroutine barrier); see ARCHITECTURE.md for the measured tradeoffs.
func WithEngine(e Engine) Option {
	return func(nw *Network) { nw.cfg.Engine = e }
}

// WithGlobalSendFactor scales the global-mode cap: each node may send
// factor*ceil(log2 n) messages per round (default 1, the model's O(log n)).
func WithGlobalSendFactor(factor int) Option {
	return func(nw *Network) { nw.cfg.GlobalSendFactor = factor }
}

// WithShards overrides the parallel engines' shard count (default:
// autotuned from the CPU count and graph size). Results are independent of
// the value; it exists for tuning and determinism tests.
func WithShards(s int) Option {
	return func(nw *Network) { nw.cfg.Shards = s }
}

// WithStepBatch sets the step engine's work-stealing batch width (0 =
// whole-shard tasks, the default; negative = autotuned). Results are
// independent of the value; see sim.Config.StepBatch.
func WithStepBatch(b int) Option {
	return func(nw *Network) { nw.cfg.StepBatch = b }
}

// WithWorkers sets EngineDist's worker-process count (default
// sim.DefaultDistWorkers); the distributed engine runs one shard per
// worker. Results are independent of the value. Other engines ignore it.
func WithWorkers(w int) Option {
	return func(nw *Network) { nw.cfg.DistWorkers = w }
}

// WithDistOptions tunes EngineDist's transport/robustness envelope and
// fault injection (nil: defaults). Other engines ignore it.
func WithDistOptions(o *DistOptions) Option {
	return func(nw *Network) { nw.cfg.DistOpts = o }
}

// WithDistConnect switches EngineDist to connect mode: instead of
// spawning local worker processes the coordinator dials these
// pre-started workers (scheme-prefixed addresses, e.g.
// "tcp:10.0.0.7:9000"), one per shard in shard order — typically
// `hybridworker -listen` processes on other machines. The worker count
// follows the address count. Composes with WithDistOptions (the
// addresses are merged into whichever options are in effect).
func WithDistConnect(addrs ...string) Option {
	return func(nw *Network) {
		var o DistOptions
		if prev, ok := nw.cfg.DistOpts.(*DistOptions); ok && prev != nil {
			o = *prev
		}
		o.Connect = append([]string(nil), addrs...)
		nw.cfg.DistOpts = &o
		nw.cfg.DistWorkers = len(addrs)
	}
}

// WithDistWindow sets EngineDist's round-pipelining window: the
// coordinator may have up to w rounds in flight per worker before a
// reply must drain, hiding WAN round trips on barrier-only rounds
// (default 1: lockstep; automatically clamped to 1 against workers that
// only speak protocol v1). Results are independent of the value.
// Composes with WithDistOptions and WithDistConnect.
func WithDistWindow(w int) Option {
	return func(nw *Network) {
		var o DistOptions
		if prev, ok := nw.cfg.DistOpts.(*DistOptions); ok && prev != nil {
			o = *prev
		}
		o.Window = w
		nw.cfg.DistOpts = &o
	}
}

// WithMaxRounds overrides the runaway-guard round limit.
func WithMaxRounds(r int) Option {
	return func(nw *Network) { nw.cfg.MaxRounds = r }
}

// WithCut marks a node bipartition whose crossing global traffic is counted
// in Metrics (used by the lower-bound experiments).
func WithCut(cut []bool) Option {
	return func(nw *Network) { nw.cfg.Cut = append([]bool(nil), cut...) }
}

// WithContext attaches a cancellation context to the network's runs: every
// engine checks it at each round boundary and aborts cooperatively, so a
// cancelled run returns promptly with an error for which
// errors.Is(err, context.Canceled) (or DeadlineExceeded) holds.
func WithContext(ctx context.Context) Option {
	return func(nw *Network) { nw.cfg.Ctx = ctx }
}

// WithProgress registers a per-round progress hook: fn is invoked once per
// completed round barrier with the number of rounds completed so far, on
// every engine. It runs on the engine's coordinator, so it must be fast
// and must not call back into the network. The final generation that
// retires the last nodes also ticks, so the last value may exceed the
// result's Metrics.Rounds by one (don't treat Metrics.Rounds as the
// hook's ceiling), and the hook may still fire for the round in which a
// run failed or was cancelled.
func WithProgress(fn func(round int)) Option {
	return func(nw *Network) { nw.cfg.OnRound = fn }
}

// WithCacheDir selects the directory used by SaveCache/LoadCache for the
// persistent warm-start cache (routing sessions + skeleton results). The
// directory is created on first save. Cache files are keyed by the graph's
// fingerprint and the seed, so one directory can serve many instances. The
// option only records the location; call LoadCache/SaveCache (or use
// hybridsim's -cache-dir, which does both) to actually touch disk.
func WithCacheDir(dir string) Option {
	return func(nw *Network) { nw.cacheDir = dir }
}

// WithCacheTrace installs a cache-event hook on both warm-start caches: fn
// receives one line per collective cache agreement ("skeleton …: hit",
// "session …: rebuild"). The sequence is deterministic for a fixed seed and
// identical on every engine; the golden round-trace test pins it, and it is
// useful for verifying that a warm-started run skipped construction.
func WithCacheTrace(fn func(event string)) Option {
	return func(nw *Network) {
		nw.sessions.SetTrace(fn)
		nw.skeletons.SetTrace(fn)
		nw.clusters.SetTrace(fn)
	}
}

// New creates a Network over g. The graph must be connected for the
// paper's algorithms to have their guarantees; New does not copy g, and g
// must not be mutated during runs.
func New(g *graph.Graph, opts ...Option) *Network {
	nw := &Network{
		g:         g,
		sessions:  routing.NewSessionCache(),
		skeletons: skeleton.NewResultCache(),
		clusters:  helpers.NewClusterCache(),
	}
	for _, o := range opts {
		o(nw)
	}
	return nw
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.g.N() }

// run executes one algorithm pipeline under the network's configuration,
// dispatching on the engine: step-native machines on EngineStep, the
// blocking closures on the goroutine engines. It is the single execution
// path behind every facade entry point. (A package-level function because
// Go methods cannot be generic.)
func run[T any](nw *Network, p sim.Pipeline[T]) ([]T, Metrics, error) {
	return sim.RunPipeline(nw.g, nw.cfg, p)
}

// routingParams is the routing configuration every facade run shares: the
// network's session cache (repeated calls reuse helper families and hashes
// whenever the instance parameters and memberships recur) and the cluster
// cache (the seed-independent ruling-set/cluster structure is reused per
// µ, within a run and across runs — including runs warm-started from a
// different seed's structural cache section).
func (nw *Network) routingParams() routing.Params {
	return routing.Params{
		Cache:   nw.sessions,
		Helpers: helpers.Params{Clusters: nw.clusters},
	}
}

// APSPResult holds a full distance matrix and the run's cost.
type APSPResult struct {
	// Dist[u][v] is the (exact) distance from u to v, Inf if unreachable.
	Dist    [][]int64
	Metrics Metrics
}

// APSP solves all-pairs shortest paths exactly in O~(sqrt n) rounds
// (Theorem 1.1).
func (nw *Network) APSP() (*APSPResult, error) {
	return nw.apsp(hybridapsp.Pipeline(nw.apspParams()))
}

// APSPBaseline solves APSP exactly with the O~(n^(2/3)) algorithm of
// Augustine et al. (SODA '20) that Theorem 1.1 improves on.
func (nw *Network) APSPBaseline() (*APSPResult, error) {
	return nw.apsp(hybridapsp.BaselinePipeline(nw.apspParams()))
}

// APSPLocalOnly solves APSP using only the local mode, flooding for the
// given number of rounds (exact iff rounds >= hop diameter) — the Θ(D)
// LOCAL baseline of the paper's §1.
func (nw *Network) APSPLocalOnly(rounds int) (*APSPResult, error) {
	return nw.apsp(hybridapsp.LocalPipeline(rounds))
}

func (nw *Network) apspParams() hybridapsp.Params {
	return hybridapsp.Params{Routing: nw.routingParams(), SkeletonCache: nw.skeletons}
}

func (nw *Network) apsp(p sim.Pipeline[[]int64]) (*APSPResult, error) {
	out, m, err := run(nw, p)
	if err != nil {
		return nil, err
	}
	return &APSPResult{Dist: out, Metrics: m}, nil
}

// KSSPSpec is a self-describing k-SSP algorithm selection: one of the
// Theorem 1.2 instantiations, carrying its name and guarantee into the
// result. Construct one with Cor46, Cor47, Cor48 or KSSPRealMM; the zero
// value is invalid.
type KSSPSpec struct {
	name      string
	guarantee string
	alg       kssp.AlgSpec
	valid     bool
}

// Name identifies the instantiation (e.g. "Cor4.6(ε=0.5)").
func (s KSSPSpec) Name() string { return s.name }

// Guarantee states the approximation and round guarantee the spec carries.
func (s KSSPSpec) Guarantee() string { return s.guarantee }

func defaultEps(eps float64) float64 {
	if eps <= 0 {
		return 0.5
	}
	return eps
}

// Cor46 is Corollary 4.6: (3+ε) weighted / (1+ε) unweighted approximation
// in O~(n^(1/3)/ε) rounds for up to n^(1/3) sources (declared-cost
// oracle). eps <= 0 defaults to 0.5.
func Cor46(eps float64) KSSPSpec {
	eps = defaultEps(eps)
	return KSSPSpec{
		name:      fmt.Sprintf("Cor4.6(ε=%g)", eps),
		guarantee: fmt.Sprintf("(3+ε) weighted / (1+ε) unweighted, O~(n^(1/3)/ε) rounds, k <= n^(1/3) sources, ε=%g", eps),
		alg:       kssp.Corollary46(eps, 0),
		valid:     true,
	}
}

// Cor47 is Corollary 4.7: (7+ε) weighted / (2+ε) unweighted approximation
// in O~(n^(1/3)/ε + sqrt k) rounds for arbitrary k (declared-cost oracle).
// eps <= 0 defaults to 0.5.
func Cor47(eps float64) KSSPSpec {
	eps = defaultEps(eps)
	return KSSPSpec{
		name:      fmt.Sprintf("Cor4.7(ε=%g)", eps),
		guarantee: fmt.Sprintf("(7+ε) weighted / (2+ε) unweighted, O~(n^(1/3)/ε + sqrt k) rounds, arbitrary k, ε=%g", eps),
		alg:       kssp.Corollary47(eps, 0),
		valid:     true,
	}
}

// Cor48 is Corollary 4.8: (3+o(1)) weighted / (1+ε) unweighted
// approximation in O~(n^0.397 + sqrt k) rounds (declared-cost oracle at
// δ = ρ). eps <= 0 defaults to 0.5.
func Cor48(eps float64) KSSPSpec {
	eps = defaultEps(eps)
	return KSSPSpec{
		name:      fmt.Sprintf("Cor4.8(ε=%g)", eps),
		guarantee: fmt.Sprintf("(3+o(1)) weighted / (1+ε) unweighted, O~(n^0.397 + sqrt k) rounds, ε=%g", eps),
		alg:       kssp.Corollary48(eps, 0),
		valid:     true,
	}
}

// KSSPRealMM runs the semiring matrix-multiplication APSP with real
// messages (δ = 1/3, exact on the skeleton): factor 3 weighted / (1+2/η)
// unweighted. eta outside (0, +Inf) defaults to 2.
func KSSPRealMM(eta float64) KSSPSpec {
	if !(eta > 0) || math.IsInf(eta, 1) {
		eta = 2
	}
	return KSSPSpec{
		name:      fmt.Sprintf("RealMM(η=%g)", eta),
		guarantee: fmt.Sprintf("factor 3 weighted / (1+2/η) unweighted via real-message semiring MM (δ=1/3), η=%g", eta),
		alg:       kssp.RealMM(eta),
		valid:     true,
	}
}

// KSSPResult holds per-node estimated distances to each source, tagged
// with the spec that produced them.
type KSSPResult struct {
	// Dist[v][source] is node v's estimate d~(v, source).
	Dist    []map[int]int64
	Sources []int
	// Algorithm and Guarantee identify the spec value the run used.
	Algorithm string
	Guarantee string
	Metrics   Metrics
}

// KSSP solves the k-source shortest paths problem approximately
// (Theorem 1.2) with the chosen spec value, e.g.
// net.KSSP(sources, hybrid.Cor46(0.25)).
func (nw *Network) KSSP(sources []int, spec KSSPSpec) (*KSSPResult, error) {
	if !spec.valid {
		return nil, fmt.Errorf("hybrid: invalid k-SSP spec (use Cor46, Cor47, Cor48 or KSSPRealMM)")
	}
	n := nw.g.N()
	isSource := make([]bool, n)
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("hybrid: source %d out of range", s)
		}
		isSource[s] = true
	}
	out, m, err := run(nw, kssp.Pipeline(isSource, len(sources), spec.alg, nw.ksspParams()))
	if err != nil {
		return nil, err
	}
	dist := make([]map[int]int64, n)
	for v, res := range out {
		mp := make(map[int]int64, len(res))
		for _, sd := range res {
			mp[sd.Source] = sd.Dist
		}
		dist[v] = mp
	}
	return &KSSPResult{
		Dist:      dist,
		Sources:   append([]int(nil), sources...),
		Algorithm: spec.name,
		Guarantee: spec.guarantee,
		Metrics:   m,
	}, nil
}

func (nw *Network) ksspParams() kssp.Params {
	return kssp.Params{Routing: nw.routingParams(), SkeletonCache: nw.skeletons}
}

// SSSPResult holds per-node exact distances to the single source.
type SSSPResult struct {
	Source  int
	Dist    []int64
	Metrics Metrics
}

// SSSP solves single-source shortest paths exactly in O~(n^(2/5)) rounds
// (Theorem 1.3 / Corollary 4.9).
func (nw *Network) SSSP(source int) (*SSSPResult, error) {
	n := nw.g.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("hybrid: source %d out of range", source)
	}
	isSource := make([]bool, n)
	isSource[source] = true
	out, m, err := run(nw, kssp.Pipeline(isSource, 1, kssp.Corollary49(), nw.ksspParams()))
	if err != nil {
		return nil, err
	}
	dist := make([]int64, n)
	for v, res := range out {
		for _, sd := range res {
			if sd.Source == source {
				dist[v] = sd.Dist
			}
		}
	}
	return &SSSPResult{Source: source, Dist: dist, Metrics: m}, nil
}

// DiameterSpec is a self-describing diameter algorithm selection
// (Theorem 1.4), carrying its name and guarantee into the result.
// Construct one with DiamCor52, DiamCor53 or DiamRealMM; the zero value is
// invalid.
type DiameterSpec struct {
	name      string
	guarantee string
	alg       diameter.AlgSpec
	valid     bool
}

// Name identifies the instantiation (e.g. "Cor5.2(ε=0.5)").
func (s DiameterSpec) Name() string { return s.name }

// Guarantee states the approximation and round guarantee the spec carries.
func (s DiameterSpec) Guarantee() string { return s.guarantee }

// DiamCor52 is Corollary 5.2: a (3/2+ε)-approximation (plus the 2/η
// exploration slack of Theorem 5.1) in O~(n^(1/3)/ε) rounds
// (declared-cost oracle). eps <= 0 defaults to 0.5.
func DiamCor52(eps float64) DiameterSpec {
	eps = defaultEps(eps)
	return DiameterSpec{
		name:      fmt.Sprintf("Cor5.2(ε=%g)", eps),
		guarantee: fmt.Sprintf("D <= D~ <= (3/2+ε+2/η)·D, O~(n^(1/3)/ε) rounds, ε=%g", eps),
		alg:       diameter.Corollary52(eps, 0),
		valid:     true,
	}
}

// DiamCor53 is Corollary 5.3: a (1+ε)-approximation in O~(n^0.397/ε)
// rounds (declared-cost oracle at δ = ρ). eps <= 0 defaults to 0.5.
func DiamCor53(eps float64) DiameterSpec {
	eps = defaultEps(eps)
	return DiameterSpec{
		name:      fmt.Sprintf("Cor5.3(ε=%g)", eps),
		guarantee: fmt.Sprintf("D <= D~ <= (1+ε+2/η)·D, O~(n^0.397/ε) rounds, ε=%g", eps),
		alg:       diameter.Corollary53(eps, 0),
		valid:     true,
	}
}

// DiamRealMM computes the exact skeleton diameter with real messages
// (δ = 1/3): a (1+2/η)-approximation end to end. eta outside (0, +Inf)
// defaults to 2.
func DiamRealMM(eta float64) DiameterSpec {
	if !(eta > 0) || math.IsInf(eta, 1) {
		eta = 2
	}
	return DiameterSpec{
		name:      fmt.Sprintf("RealMM(η=%g)", eta),
		guarantee: fmt.Sprintf("D <= D~ <= (1+2/η)·D via exact skeleton diameter (real messages, δ=1/3), η=%g", eta),
		alg:       diameter.RealMM(eta),
		valid:     true,
	}
}

// DiameterResult holds the estimate every node agreed on, tagged with the
// spec that produced it.
type DiameterResult struct {
	Estimate int64
	// Algorithm and Guarantee identify the spec value the run used.
	Algorithm string
	Guarantee string
	Metrics   Metrics
}

// Diameter estimates the hop diameter D(G) (Theorem 1.4) on unweighted
// graphs with the chosen spec value, e.g.
// net.Diameter(hybrid.DiamCor52(0.25)): D <= Estimate per the spec's
// guarantee.
func (nw *Network) Diameter(spec DiameterSpec) (*DiameterResult, error) {
	if !spec.valid {
		return nil, fmt.Errorf("hybrid: invalid diameter spec (use DiamCor52, DiamCor53 or DiamRealMM)")
	}
	out, m, err := run(nw, diameter.Pipeline(spec.alg, diameter.Params{Routing: nw.routingParams(), SkeletonCache: nw.skeletons}))
	if err != nil {
		return nil, err
	}
	est, err := uniformEstimate(out, "diameter")
	if err != nil {
		return nil, err
	}
	return &DiameterResult{Estimate: est, Algorithm: spec.name, Guarantee: spec.guarantee, Metrics: m}, nil
}

// WeightedDiameterApprox computes a factor-2 approximation of the WEIGHTED
// diameter max d(u,v) via one exact SSSP run plus eccentricity doubling —
// the O~(n^(1/3))-class upper bound the paper notes in §1.1 (footnote 6).
// D_w <= Estimate <= 2·D_w.
func (nw *Network) WeightedDiameterApprox() (*DiameterResult, error) {
	out, m, err := run(nw, diameter.WeightedApproxPipeline(kssp.Corollary49(), nw.ksspParams()))
	if err != nil {
		return nil, err
	}
	est, err := uniformEstimate(out, "weighted diameter")
	if err != nil {
		return nil, err
	}
	return &DiameterResult{
		Estimate:  est,
		Algorithm: "WeightedApprox",
		Guarantee: "D_w <= D~ <= 2·D_w via exact SSSP eccentricity doubling",
		Metrics:   m,
	}, nil
}

// uniformEstimate returns the estimate every node agreed on, or an error
// naming the first disagreeing node. The paper's protocols end with a
// globally announced value, so a disagreement means a w.h.p. event failed
// — surfacing it beats silently picking node 0's answer.
func uniformEstimate(out []int64, what string) (int64, error) {
	for v := 1; v < len(out); v++ {
		if out[v] != out[0] {
			return 0, fmt.Errorf("hybrid: nodes disagree on %s estimate (node %d: %d vs node 0: %d)", what, v, out[v], out[0])
		}
	}
	if len(out) == 0 {
		return 0, nil
	}
	return out[0], nil
}

// RoutingSpec is one node's view of a token routing instance
// (Theorem 2.2): the tokens it sends, the labels it expects, and the
// globally known instance parameters. See routing.Spec for field docs.
type RoutingSpec = routing.Spec

// RoutingToken is one routed token: a RoutingLabel plus its O(log n)-bit
// payload.
type RoutingToken = routing.Token

// RoutingLabel identifies a token by (sender, receiver, index).
type RoutingLabel = routing.Label

// TokenRouting exposes Theorem 2.2 directly: route the given tokens
// (specs[v] is node v's view) and return each node's received tokens.
// Sessions are cached on the Network, so repeated instances with the same
// parameters and memberships skip the helper-family setup.
func (nw *Network) TokenRouting(specs []RoutingSpec) ([][]RoutingToken, Metrics, error) {
	if len(specs) != nw.g.N() {
		return nil, Metrics{}, fmt.Errorf("hybrid: %d specs for %d nodes", len(specs), nw.g.N())
	}
	if err := routing.Validate(specs); err != nil {
		return nil, Metrics{}, err
	}
	out, m, err := run(nw, routing.Pipeline(specs, nw.routingParams()))
	if err != nil {
		return nil, Metrics{}, err
	}
	return out, m, nil
}

// Ensure the facade's variants remain wired to implementations that expose
// the interfaces they promise.
var _ clique.Algorithm = (*clique.MM)(nil)

// cacheFormatVersion gates the on-disk warm-start cache format. Bump it
// whenever the serialized shape of any snapshot changes; older files are
// then rejected (clean cold start), never migrated. v2 split the cache
// into a seed-independent structural file and a seed-specific file,
// deduplicated per-cluster state, and flate-compressed the payloads; v1
// files are rejected with persist.ErrVersion.
const cacheFormatVersion = 2

// structPayload is the on-disk structural section: the seed-independent
// cluster structures (ruling sets, ruler assignments, member directories)
// plus the graph identity they were recorded under. One structural file
// serves every seed of a graph — it is what a cross-seed run warm-starts
// from.
type structPayload struct {
	N           int
	Fingerprint uint64
	Clusters    helpers.ClusterSnapshot
}

// seedPayload is the on-disk seed section: the session and skeleton
// snapshots (both seed-dependent) plus the full instance identity. Session
// entries reference cluster structures by (µ, ruler); resolving them needs
// the structural section, so a seed file is only usable together with its
// graph's structural file. The identity is redundant with the file name
// but is validated on load, so a file renamed or copied across instances
// is rejected instead of trusted.
type seedPayload struct {
	N           int
	Seed        int64
	Fingerprint uint64
	Sessions    routing.CacheSnapshot
	Skeletons   skeleton.CacheSnapshot
}

// CachePath returns the file the network's seed-specific cache section
// persists to: <cacheDir>/warm-<graph fingerprint>-seed<seed>.hybc. It
// returns "" when no cache directory is configured (WithCacheDir).
func (nw *Network) CachePath() string {
	if nw.cacheDir == "" {
		return ""
	}
	return filepath.Join(nw.cacheDir,
		fmt.Sprintf("warm-%016x-seed%d.hybc", nw.g.Fingerprint(), nw.cfg.Seed))
}

// StructCachePath returns the file the network's seed-independent
// structural cache section persists to:
// <cacheDir>/warm-<graph fingerprint>-struct.hybc — shared by every seed
// over the same graph. It returns "" when no cache directory is
// configured.
func (nw *Network) StructCachePath() string {
	if nw.cacheDir == "" {
		return ""
	}
	return filepath.Join(nw.cacheDir,
		fmt.Sprintf("warm-%016x-struct.hybc", nw.g.Fingerprint()))
}

// SaveCache persists the network's warm-start caches to the configured
// cache directory, atomically: the seed-independent cluster structures to
// StructCachePath (shared across seeds) and the session + skeleton
// snapshots to CachePath. A later Network over the same graph and seed can
// LoadCache both and skip session and skeleton construction entirely; one
// over the same graph and a different seed loads the structural section
// alone and still skips the ruling-set and cluster-formation rounds. Must
// not be called while a run is in flight.
func (nw *Network) SaveCache() error {
	if nw.cacheDir == "" {
		return fmt.Errorf("hybrid: no cache directory configured (use WithCacheDir)")
	}
	sessions, err := nw.sessions.Snapshot(nw.clusters)
	if err != nil {
		return fmt.Errorf("hybrid: snapshotting sessions: %w", err)
	}
	skeletons, err := nw.skeletons.Snapshot()
	if err != nil {
		return fmt.Errorf("hybrid: snapshotting skeletons: %w", err)
	}
	sp := structPayload{
		N:           nw.g.N(),
		Fingerprint: nw.g.Fingerprint(),
		Clusters:    nw.clusters.Snapshot(),
	}
	if err := persist.SaveCompressed(nw.StructCachePath(), cacheFormatVersion, sp); err != nil {
		return err
	}
	pl := seedPayload{
		N:           nw.g.N(),
		Seed:        nw.cfg.Seed,
		Fingerprint: nw.g.Fingerprint(),
		Sessions:    sessions,
		Skeletons:   skeletons,
	}
	return persist.SaveCompressed(nw.CachePath(), cacheFormatVersion, pl)
}

// CacheLoadStatus reports which sections of the warm-start cache a
// LoadCache call restored.
type CacheLoadStatus struct {
	// Structural reports that the seed-independent section (cluster
	// structures) was restored.
	Structural bool
	// Seed reports that the seed-specific section (routing sessions and
	// skeleton results) was restored.
	Seed bool
}

// Any reports whether any section was restored.
func (s CacheLoadStatus) Any() bool { return s.Structural || s.Seed }

// LoadCache restores the warm-start caches from the configured cache
// directory. Missing files are not errors: a missing structural file is a
// plain cold start, and a present structural file with a missing seed file
// is the cross-seed partial warm start (status.Structural true, Seed
// false) — the run reuses cluster structures and rebuilds the rest. Every
// rejection — corrupt file, format-version mismatch (including v1 files),
// instance mismatch, dangling dedup reference — returns a zero status and
// an error, and leaves ALL caches empty: a bad cache file never changes
// results, only the number of setup rounds, and a partially trusted file
// set is never used. Must not be called while a run is in flight.
func (nw *Network) LoadCache() (CacheLoadStatus, error) {
	if nw.cacheDir == "" {
		return CacheLoadStatus{}, fmt.Errorf("hybrid: no cache directory configured (use WithCacheDir)")
	}
	status, err := nw.loadCacheSections()
	if err != nil {
		// Leave no half-warm state behind: clearing via Restore keeps any
		// WithCacheTrace hooks installed.
		n := nw.g.N()
		if cerr := nw.clusters.Restore(helpers.ClusterSnapshot{}, n); cerr != nil {
			return CacheLoadStatus{}, fmt.Errorf("%w (and clearing clusters: %v)", err, cerr)
		}
		if cerr := nw.sessions.Restore(routing.CacheSnapshot{}, n, nw.clusters); cerr != nil {
			return CacheLoadStatus{}, fmt.Errorf("%w (and clearing sessions: %v)", err, cerr)
		}
		if cerr := nw.skeletons.Restore(skeleton.CacheSnapshot{}, n); cerr != nil {
			return CacheLoadStatus{}, fmt.Errorf("%w (and clearing skeletons: %v)", err, cerr)
		}
		return CacheLoadStatus{}, err
	}
	return status, nil
}

// loadCacheSections restores the structural then the seed section,
// reporting what it managed; any returned error means the caches may hold
// partial state and must be cleared by the caller.
func (nw *Network) loadCacheSections() (CacheLoadStatus, error) {
	var status CacheLoadStatus
	n := nw.g.N()

	structPath := nw.StructCachePath()
	var sp structPayload
	err := persist.LoadCompressed(structPath, cacheFormatVersion, &sp)
	switch {
	case os.IsNotExist(err):
		// No structural section. A v2 seed file cannot be resolved without
		// it, so this is a full cold start regardless of the seed file —
		// unless a file sits at the seed path, which is either the v1
		// upgrade shape (the v1 release wrote a single file under the same
		// name; report the version mismatch, not a missing sibling) or an
		// incomplete v2 set (e.g. the structural file was deleted): reject
		// loudly rather than silently ignoring a file that was supposed to
		// warm us.
		if info, perr := persist.Probe(nw.CachePath()); perr == nil {
			if info.Version != cacheFormatVersion {
				return status, fmt.Errorf("hybrid: rejecting warm-start cache: %w: %s: file has format v%d, this build reads v%d",
					persist.ErrVersion, nw.CachePath(), info.Version, cacheFormatVersion)
			}
			return status, fmt.Errorf("hybrid: rejecting warm-start cache %s: seed section present but structural section %s is missing",
				nw.CachePath(), structPath)
		} else if !os.IsNotExist(perr) {
			return status, fmt.Errorf("hybrid: rejecting warm-start cache: %w", perr)
		}
		return status, nil
	case err != nil:
		return status, fmt.Errorf("hybrid: rejecting warm-start cache: %w", err)
	}
	if sp.N != n || sp.Fingerprint != nw.g.Fingerprint() {
		return status, fmt.Errorf("hybrid: rejecting warm-start cache %s: recorded for n=%d graph %016x, this network is n=%d graph %016x",
			structPath, sp.N, sp.Fingerprint, n, nw.g.Fingerprint())
	}
	if err := nw.clusters.Restore(sp.Clusters, n); err != nil {
		return status, fmt.Errorf("hybrid: rejecting warm-start cache %s: %w", structPath, err)
	}
	status.Structural = true

	seedPath := nw.CachePath()
	var pl seedPayload
	err = persist.LoadCompressed(seedPath, cacheFormatVersion, &pl)
	switch {
	case os.IsNotExist(err):
		return status, nil // cross-seed partial warm start
	case err != nil:
		return status, fmt.Errorf("hybrid: rejecting warm-start cache: %w", err)
	}
	if pl.N != n || pl.Seed != nw.cfg.Seed || pl.Fingerprint != nw.g.Fingerprint() {
		return status, fmt.Errorf("hybrid: rejecting warm-start cache %s: recorded for n=%d seed=%d graph %016x, this network is n=%d seed=%d graph %016x",
			seedPath, pl.N, pl.Seed, pl.Fingerprint, n, nw.cfg.Seed, nw.g.Fingerprint())
	}
	if err := nw.skeletons.Restore(pl.Skeletons, n); err != nil {
		return status, fmt.Errorf("hybrid: rejecting warm-start cache %s: %w", seedPath, err)
	}
	if err := nw.sessions.Restore(pl.Sessions, n, nw.clusters); err != nil {
		return status, fmt.Errorf("hybrid: rejecting warm-start cache %s: %w", seedPath, err)
	}
	status.Seed = true
	return status, nil
}

// CacheFileInfo describes one on-disk warm-start cache section file, for
// diagnostics (hybridsim's cache summary).
type CacheFileInfo struct {
	// Path is the section's file path ("" when no cache dir is set).
	Path string
	// Exists reports whether a well-formed cache header was found there.
	Exists bool
	// Version is the format version the file claims (compare against 2;
	// a v1 file is reported as Version 1, not an error).
	Version uint32
	// Bytes is the total file size on disk.
	Bytes int64
}

// CacheFiles probes the two cache section files without decoding their
// payloads: cheap size/format diagnostics for CLI summaries. Malformed or
// missing files report Exists false.
func (nw *Network) CacheFiles() (structural, seed CacheFileInfo) {
	probe := func(path string) CacheFileInfo {
		info := CacheFileInfo{Path: path}
		if path == "" {
			return info
		}
		pi, err := persist.Probe(path)
		if err != nil {
			return info
		}
		info.Exists = true
		info.Version = pi.Version
		info.Bytes = pi.FileBytes
		return info
	}
	return probe(nw.StructCachePath()), probe(nw.CachePath())
}
