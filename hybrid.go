// Package hybrid is a Go implementation of the HYBRID network model and of
// the shortest-path and diameter algorithms of Kuhn & Schneider,
// "Computing Shortest Paths and Diameter in the Hybrid Network Model"
// (PODC 2020), built on the model of Augustine et al. (SODA 2020).
//
// The HYBRID model couples two communication modes over a node set
// {0..n-1}: a LOCAL mode with unbounded bandwidth along the edges of a
// local graph G, and an NCC-style global mode in which every node may send
// O(log n) messages of O(log n) bits per round to arbitrary nodes. The
// package runs real message-passing node programs under a synchronous
// round barrier and reports the paper's cost measures: rounds, global
// messages, per-round load. Three interchangeable round engines execute
// the programs (WithEngine): the sharded worker-pool engine (default), the
// goroutine-free step engine that runs each node as a resumable state
// machine (fastest on large inputs), and the legacy goroutine-per-node
// engine, kept as a differential-testing oracle — all three produce
// byte-identical results and Metrics for a fixed seed. ARCHITECTURE.md
// documents the engine designs and when to pick which.
//
// Results implemented (all exact/approximation guarantees are verified by
// the test suite against sequential ground truth):
//
//   - Theorem 1.1: exact APSP in O~(sqrt n) rounds — Network.APSP.
//   - The O~(n^(2/3)) APSP of Augustine et al. it improves on —
//     Network.APSPBaseline.
//   - Theorem 2.2: the token routing protocol — Network.TokenRouting.
//   - Theorem 1.2 / Corollaries 4.6-4.8: approximate k-SSP — Network.KSSP.
//   - Theorem 1.3 / Corollary 4.9: exact SSSP in O~(n^(2/5)) — Network.SSSP.
//   - Theorem 1.4 / Corollaries 5.2-5.3: diameter approximation —
//     Network.Diameter.
//   - Theorems 1.5-1.6: the lower-bound constructions (Figures 1-2) with
//     machine-checked dichotomy lemmas — see internal/lowerbound and the
//     examples/lowerbound program.
//
// Quickstart:
//
//	g := hybrid.GridGraph(16, 16)
//	net := hybrid.New(g, hybrid.WithSeed(1))
//	res, err := net.APSP()
//	// res.Dist[u][v] is the exact distance; res.Metrics.Rounds the cost.
package hybrid

import (
	"fmt"

	"repro/internal/clique"
	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/hybridapsp"
	"repro/internal/kssp"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Metrics is the per-run cost report (rounds, message counts, peak loads).
type Metrics = sim.Metrics

// Engine selects the round-engine implementation executing the node
// programs; see WithEngine.
type Engine = sim.Engine

const (
	// EngineSharded is the default engine (sim v2): per-shard message
	// staging, worker-pool delivery, preallocated and reused inboxes.
	EngineSharded = sim.EngineSharded
	// EngineLegacy is the original goroutine-per-node engine with a single
	// delivery coordinator. It is slower but maximally simple, and is kept
	// as a differential-testing oracle: for any fixed seed all engines
	// produce byte-identical results and Metrics.
	EngineLegacy = sim.EngineLegacy
	// EngineStep is the goroutine-free engine (sim v3): each node runs as
	// an explicit resumable state machine and the round loop itself is the
	// barrier, removing the scheduler wake/park cost that dominates large
	// runs. APSP (all variants) and TokenRouting run step-native machines
	// on it; the remaining algorithms run through a goroutine-backed
	// adapter, still byte-identical, at roughly EngineSharded speed. See
	// ARCHITECTURE.md for the design and measured numbers.
	EngineStep = sim.EngineStep
)

// Network wraps a local communication graph with run configuration.
type Network struct {
	g   *graph.Graph
	cfg sim.Config
}

// Option configures a Network.
type Option func(*Network)

// WithSeed roots all of the run's randomness (fully reproducible runs).
func WithSeed(seed int64) Option {
	return func(nw *Network) { nw.cfg.Seed = seed }
}

// WithEngine selects the round engine (default EngineSharded). Engines
// change wall-clock speed only: results and Metrics are engine-independent
// for a fixed seed. EngineStep is the fastest on large inputs (no
// goroutine barrier); see ARCHITECTURE.md for the measured tradeoffs.
func WithEngine(e Engine) Option {
	return func(nw *Network) { nw.cfg.Engine = e }
}

// WithGlobalSendFactor scales the global-mode cap: each node may send
// factor*ceil(log2 n) messages per round (default 1, the model's O(log n)).
func WithGlobalSendFactor(factor int) Option {
	return func(nw *Network) { nw.cfg.GlobalSendFactor = factor }
}

// WithMaxRounds overrides the runaway-guard round limit.
func WithMaxRounds(r int) Option {
	return func(nw *Network) { nw.cfg.MaxRounds = r }
}

// WithCut marks a node bipartition whose crossing global traffic is counted
// in Metrics (used by the lower-bound experiments).
func WithCut(cut []bool) Option {
	return func(nw *Network) { nw.cfg.Cut = append([]bool(nil), cut...) }
}

// New creates a Network over g. The graph must be connected for the
// paper's algorithms to have their guarantees; New does not copy g, and g
// must not be mutated during runs.
func New(g *graph.Graph, opts ...Option) *Network {
	nw := &Network{g: g}
	for _, o := range opts {
		o(nw)
	}
	return nw
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.g.N() }

// APSPResult holds a full distance matrix and the run's cost.
type APSPResult struct {
	// Dist[u][v] is the (exact) distance from u to v, Inf if unreachable.
	Dist    [][]int64
	Metrics Metrics
}

// APSP solves all-pairs shortest paths exactly in O~(sqrt n) rounds
// (Theorem 1.1).
func (nw *Network) APSP() (*APSPResult, error) {
	return nw.runAPSP(
		func(env *sim.Env) []int64 {
			return hybridapsp.Compute(env, hybridapsp.Params{})
		},
		func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return hybridapsp.NewComputeMachine(env, hybridapsp.Params{}, done)
		})
}

// APSPBaseline solves APSP exactly with the O~(n^(2/3)) algorithm of
// Augustine et al. (SODA '20) that Theorem 1.1 improves on.
func (nw *Network) APSPBaseline() (*APSPResult, error) {
	return nw.runAPSP(
		func(env *sim.Env) []int64 {
			return hybridapsp.BaselineCompute(env, hybridapsp.Params{})
		},
		func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return hybridapsp.NewBaselineComputeMachine(env, hybridapsp.Params{}, done)
		})
}

// APSPLocalOnly solves APSP using only the local mode, flooding for the
// given number of rounds (exact iff rounds >= hop diameter) — the Θ(D)
// LOCAL baseline of the paper's §1.
func (nw *Network) APSPLocalOnly(rounds int) (*APSPResult, error) {
	return nw.runAPSP(
		func(env *sim.Env) []int64 {
			return hybridapsp.LocalCompute(env, rounds)
		},
		func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return hybridapsp.NewLocalComputeMachine(env, rounds, done)
		})
}

// runAPSP executes an APSP variant: the goroutine form on the goroutine
// engines, the step-machine form on EngineStep. Both forms are
// byte-identical for a fixed seed (the differential tests hold the
// goroutine form as the oracle).
func (nw *Network) runAPSP(f func(*sim.Env) []int64,
	mf func(*sim.Env, func([]int64)) sim.StepProgram) (*APSPResult, error) {
	out := make([][]int64, nw.g.N())
	var m Metrics
	var err error
	if nw.cfg.Engine == EngineStep {
		m, err = sim.RunStep(nw.g, nw.cfg, func(env *sim.Env) sim.StepProgram {
			id := env.ID()
			return mf(env, func(res []int64) { out[id] = res })
		})
	} else {
		m, err = sim.Run(nw.g, nw.cfg, func(env *sim.Env) {
			out[env.ID()] = f(env)
		})
	}
	if err != nil {
		return nil, err
	}
	return &APSPResult{Dist: out, Metrics: m}, nil
}

// KSSPVariant selects the CLIQUE algorithm plugged into the Theorem 4.1
// framework.
type KSSPVariant int

// The k-SSP variants of Theorem 1.2 plus the real-message instantiations.
const (
	// VariantCor46 is Corollary 4.6: (3+ε) weighted / (1+ε) unweighted in
	// O~(n^(1/3)/ε) for up to n^(1/3) sources (declared-cost oracle).
	VariantCor46 KSSPVariant = iota + 1
	// VariantCor47 is Corollary 4.7: (7+ε) weighted / (2+ε) unweighted in
	// O~(n^(1/3)/ε + sqrt k) for arbitrary k (declared-cost oracle).
	VariantCor47
	// VariantCor48 is Corollary 4.8: (3+o(1)) weighted in O~(n^0.397+sqrt k)
	// (declared-cost oracle at δ = ρ).
	VariantCor48
	// VariantRealMM runs the semiring matrix-multiplication APSP with real
	// messages (δ = 1/3, exact on the skeleton): factor 3 weighted.
	VariantRealMM
)

// KSSPResult holds per-node estimated distances to each source.
type KSSPResult struct {
	// Dist[v][source] is node v's estimate d~(v, source).
	Dist    []map[int]int64
	Sources []int
	Metrics Metrics
}

// KSSP solves the k-source shortest paths problem approximately
// (Theorem 1.2). eps tunes the (1+ε)-style knobs; guarantee depends on the
// variant (see the constants).
func (nw *Network) KSSP(sources []int, variant KSSPVariant, eps float64) (*KSSPResult, error) {
	if eps <= 0 {
		eps = 0.5
	}
	var spec kssp.AlgSpec
	switch variant {
	case VariantCor46:
		spec = kssp.Corollary46(eps, 0)
	case VariantCor47:
		spec = kssp.Corollary47(eps, 0)
	case VariantCor48:
		spec = kssp.Corollary48(eps, 0)
	case VariantRealMM:
		spec = kssp.RealMM(1 / eps)
	default:
		return nil, fmt.Errorf("hybrid: unknown k-SSP variant %d", variant)
	}
	return nw.runKSSP(sources, spec)
}

// SSSPResult holds per-node exact distances to the single source.
type SSSPResult struct {
	Source  int
	Dist    []int64
	Metrics Metrics
}

// SSSP solves single-source shortest paths exactly in O~(n^(2/5)) rounds
// (Theorem 1.3 / Corollary 4.9).
func (nw *Network) SSSP(source int) (*SSSPResult, error) {
	if source < 0 || source >= nw.g.N() {
		return nil, fmt.Errorf("hybrid: source %d out of range", source)
	}
	res, err := nw.runKSSP([]int{source}, kssp.Corollary49())
	if err != nil {
		return nil, err
	}
	dist := make([]int64, nw.g.N())
	for v := range dist {
		dist[v] = res.Dist[v][source]
	}
	return &SSSPResult{Source: source, Dist: dist, Metrics: res.Metrics}, nil
}

func (nw *Network) runKSSP(sources []int, spec kssp.AlgSpec) (*KSSPResult, error) {
	n := nw.g.N()
	isSource := make([]bool, n)
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("hybrid: source %d out of range", s)
		}
		isSource[s] = true
	}
	out := make([]map[int]int64, n)
	m, err := sim.Run(nw.g, nw.cfg, func(env *sim.Env) {
		res := kssp.Compute(env, isSource[env.ID()], len(sources), spec, kssp.Params{})
		mp := make(map[int]int64, len(res))
		for _, sd := range res {
			mp[sd.Source] = sd.Dist
		}
		out[env.ID()] = mp
	})
	if err != nil {
		return nil, err
	}
	return &KSSPResult{Dist: out, Sources: append([]int(nil), sources...), Metrics: m}, nil
}

// DiameterVariant selects the CLIQUE diameter algorithm of Theorem 1.4.
type DiameterVariant int

// The diameter variants.
const (
	// DiameterCor52 is Corollary 5.2: (3/2+ε)-approximation in
	// O~(n^(1/3)/ε) (declared-cost oracle).
	DiameterCor52 DiameterVariant = iota + 1
	// DiameterCor53 is Corollary 5.3: (1+ε)-approximation in O~(n^0.397/ε)
	// (declared-cost oracle at δ = ρ).
	DiameterCor53
	// DiameterRealMM computes the exact skeleton diameter with real
	// messages (δ = 1/3): a (1+2/η)-approximation end to end.
	DiameterRealMM
)

// DiameterResult holds the estimate every node agreed on.
type DiameterResult struct {
	Estimate int64
	Metrics  Metrics
}

// Diameter estimates the hop diameter D(G) (Theorem 1.4) on unweighted
// graphs: D <= Estimate <= (α+ε')·D per the chosen variant.
func (nw *Network) Diameter(variant DiameterVariant, eps float64) (*DiameterResult, error) {
	if eps <= 0 {
		eps = 0.5
	}
	var spec diameter.AlgSpec
	switch variant {
	case DiameterCor52:
		spec = diameter.Corollary52(eps, 0)
	case DiameterCor53:
		spec = diameter.Corollary53(eps, 0)
	case DiameterRealMM:
		spec = diameter.RealMM(1 / eps)
	default:
		return nil, fmt.Errorf("hybrid: unknown diameter variant %d", variant)
	}
	out := make([]int64, nw.g.N())
	m, err := sim.Run(nw.g, nw.cfg, func(env *sim.Env) {
		out[env.ID()] = diameter.Compute(env, spec, diameter.Params{})
	})
	if err != nil {
		return nil, err
	}
	for v := 1; v < len(out); v++ {
		if out[v] != out[0] {
			return nil, fmt.Errorf("hybrid: nodes disagree on diameter estimate (%d vs %d)", out[v], out[0])
		}
	}
	return &DiameterResult{Estimate: out[0], Metrics: m}, nil
}

// WeightedDiameterApprox computes a factor-2 approximation of the WEIGHTED
// diameter max d(u,v) via one exact SSSP run plus eccentricity doubling —
// the O~(n^(1/3))-class upper bound the paper notes in §1.1 (footnote 6).
// D_w <= Estimate <= 2·D_w.
func (nw *Network) WeightedDiameterApprox() (*DiameterResult, error) {
	out := make([]int64, nw.g.N())
	m, err := sim.Run(nw.g, nw.cfg, func(env *sim.Env) {
		out[env.ID()] = diameter.WeightedApprox(env, kssp.Corollary49(), kssp.Params{})
	})
	if err != nil {
		return nil, err
	}
	for v := 1; v < len(out); v++ {
		if out[v] != out[0] {
			return nil, fmt.Errorf("hybrid: nodes disagree on weighted diameter estimate")
		}
	}
	return &DiameterResult{Estimate: out[0], Metrics: m}, nil
}

// RoutingSpec is one node's view of a token routing instance
// (Theorem 2.2): the tokens it sends, the labels it expects, and the
// globally known instance parameters. See routing.Spec for field docs.
type RoutingSpec = routing.Spec

// RoutingToken is one routed token: a RoutingLabel plus its O(log n)-bit
// payload.
type RoutingToken = routing.Token

// RoutingLabel identifies a token by (sender, receiver, index).
type RoutingLabel = routing.Label

// TokenRouting exposes Theorem 2.2 directly: route the given tokens
// (specs[v] is node v's view) and return each node's received tokens.
func (nw *Network) TokenRouting(specs []RoutingSpec) ([][]RoutingToken, Metrics, error) {
	if len(specs) != nw.g.N() {
		return nil, Metrics{}, fmt.Errorf("hybrid: %d specs for %d nodes", len(specs), nw.g.N())
	}
	if err := routing.Validate(specs); err != nil {
		return nil, Metrics{}, err
	}
	out := make([][]routing.Token, nw.g.N())
	var m Metrics
	var err error
	if nw.cfg.Engine == EngineStep {
		m, err = sim.RunStep(nw.g, nw.cfg, func(env *sim.Env) sim.StepProgram {
			id := env.ID()
			return routing.NewRouteProgram(env, specs[id], routing.Params{},
				func(toks []routing.Token) { out[id] = toks })
		})
	} else {
		m, err = sim.Run(nw.g, nw.cfg, func(env *sim.Env) {
			out[env.ID()] = routing.Route(env, specs[env.ID()], routing.Params{})
		})
	}
	if err != nil {
		return nil, Metrics{}, err
	}
	return out, m, nil
}

// Ensure the facade's variants remain wired to implementations that expose
// the interfaces they promise.
var _ clique.Algorithm = (*clique.MM)(nil)
