// Documentation checks: the markdown link graph must stay intact. Every
// relative link in the top-level docs has to resolve to a file or
// directory in the repository; CI runs this alongside the code tests, so
// a renamed file breaks the build, not the reader.
package hybrid_test

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocsLinksResolve(t *testing.T) {
	for _, doc := range []string{"README.md", "ARCHITECTURE.md", "ROADMAP.md", "PAPER.md", "PAPERS.md", "CHANGES.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			link := m[1]
			if strings.HasPrefix(link, "http://") || strings.HasPrefix(link, "https://") ||
				strings.HasPrefix(link, "mailto:") || strings.HasPrefix(link, "#") {
				continue // external links and in-page anchors are out of scope
			}
			path := link
			if i := strings.IndexByte(path, '#'); i >= 0 {
				path = path[:i]
			}
			if path == "" {
				continue
			}
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: broken relative link %q", doc, link)
			}
		}
	}
}
