package hybrid_test

import (
	"math/rand"
	"testing"

	hybrid "repro"
)

func TestNextHopsShortestRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := hybrid.WithRandomWeights(hybrid.GridGraph(6, 6), 8, rng)
	dist := hybrid.ExactAPSP(g)
	tables := hybrid.NextHops(g, dist)
	for s := 0; s < g.N(); s++ {
		for tt := 0; tt < g.N(); tt++ {
			if s == tt {
				if tables[s][tt] != -1 {
					t.Fatalf("self next hop should be -1")
				}
				continue
			}
			path := hybrid.FollowRoute(tables, s, tt)
			if path == nil {
				t.Fatalf("no route %d->%d", s, tt)
			}
			var w int64
			for i := 1; i < len(path); i++ {
				ew, ok := g.Weight(path[i-1], path[i])
				if !ok {
					t.Fatalf("route %d->%d uses non-edge", s, tt)
				}
				w += ew
			}
			if w != dist[s][tt] {
				t.Fatalf("route %d->%d has weight %d, want %d", s, tt, w, dist[s][tt])
			}
		}
	}
}

func TestNextHopsUnreachable(t *testing.T) {
	g := hybrid.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	dist := hybrid.ExactAPSP(g)
	tables := hybrid.NextHops(g, dist)
	if tables[0][2] != -1 {
		t.Fatalf("unreachable next hop should be -1")
	}
	if hybrid.FollowRoute(tables, 0, 3) != nil {
		t.Fatalf("FollowRoute should fail across components")
	}
}

func TestNextHopsFromAPSPResult(t *testing.T) {
	g := hybrid.GridGraph(5, 5)
	res, err := hybrid.New(g, hybrid.WithSeed(23)).APSP()
	if err != nil {
		t.Fatal(err)
	}
	tables := res.NextHops(g)
	path := hybrid.FollowRoute(tables, 0, 24)
	if path == nil || int64(len(path)-1) != res.Dist[0][24] {
		t.Fatalf("corner-to-corner route %v does not realize distance %d", path, res.Dist[0][24])
	}
}
