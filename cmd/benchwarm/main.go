// Command benchwarm measures the persistent warm-start cache end to end
// and emits a machine-readable BENCH_warmstart.json, so the cache's perf
// trajectory (file sizes, save/load wall times, cold vs warm vs cross-seed
// round counts) is recorded run over run instead of living in PR
// descriptions.
//
//	benchwarm -graph grid -n 1024 -engine step
//	benchwarm -graph grid,tree,geometric -n 1024 -out BENCH_warmstart.json
//
// -graph takes a comma-separated topology list; the JSON output is an
// array with one row per topology, so irregular cluster structures
// (tree, geometric) are tracked alongside the regular ones. For each
// graph the program runs APSP four times: cold (populating the cache),
// warm (same seed, full file set), cross-seed cold (reference, no cache),
// and cross-seed warm (structural section only). It self-verifies that
// every mode produces byte-identical distances to its cold reference and
// that the cross-seed round count lands strictly between cold and
// full-warm, exiting non-zero otherwise — the JSON is only written for
// runs whose correctness story holds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"time"

	hybrid "repro"
)

// report is one row of the BENCH_warmstart.json array.
type report struct {
	Graph  string `json:"graph"`
	N      int    `json:"n"`
	Engine string `json:"engine"`
	Seed   int64  `json:"seed"`
	Seed2  int64  `json:"seed2"`

	StructBytes int64 `json:"struct_bytes"`
	SeedBytes   int64 `json:"seed_bytes"`
	TotalBytes  int64 `json:"total_bytes"`

	SaveMS float64 `json:"save_ms"`
	LoadMS float64 `json:"load_ms"`

	ColdRounds int     `json:"cold_rounds"`
	ColdWallMS float64 `json:"cold_wall_ms"`
	WarmRounds int     `json:"warm_rounds"`
	WarmWallMS float64 `json:"warm_wall_ms"`

	CrossColdRounds int     `json:"cross_cold_rounds"`
	CrossColdWallMS float64 `json:"cross_cold_wall_ms"`
	CrossSeedRounds int     `json:"cross_seed_rounds"`
	CrossSeedWallMS float64 `json:"cross_seed_wall_ms"`
}

func main() {
	graphKinds := flag.String("graph", "grid", "comma-separated graphs: grid|path|cycle|tree|sparse|geometric")
	n := flag.Int("n", 1024, "number of nodes")
	engine := flag.String("engine", "step", "round engine: sharded|step|legacy")
	seed := flag.Int64("seed", 1, "seed of the cold/warm pair")
	seed2 := flag.Int64("seed2", 2, "seed of the cross-seed pair")
	out := flag.String("out", "BENCH_warmstart.json", "output JSON path")
	cacheDir := flag.String("cache-dir", "", "cache directory (default: a temp dir, removed afterwards)")
	flag.Parse()

	if err := run(*graphKinds, *n, *engine, *seed, *seed2, *out, *cacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "benchwarm: %v\n", err)
		os.Exit(1)
	}
}

// run measures every topology in the comma-separated graphKinds list and
// writes the row array to out. One shared cache directory serves all
// rows (files are fingerprint-keyed, so topologies never collide).
func run(graphKinds string, n int, engine string, seed, seed2 int64, out, cacheDir string) error {
	var eng hybrid.Engine
	switch engine {
	case "sharded":
		eng = hybrid.EngineSharded
	case "step":
		eng = hybrid.EngineStep
	case "legacy":
		eng = hybrid.EngineLegacy
	default:
		return fmt.Errorf("unknown engine %q", engine)
	}

	if cacheDir == "" {
		dir, err := os.MkdirTemp("", "benchwarm-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cacheDir = dir
	}

	var rows []report
	for _, kind := range strings.Split(graphKinds, ",") {
		kind = strings.TrimSpace(kind)
		rep, err := runOne(kind, n, engine, eng, seed, seed2, cacheDir)
		if err != nil {
			return fmt.Errorf("%s: %w", kind, err)
		}
		rows = append(rows, rep)
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s", data)
	return nil
}

// runOne is the four-run measurement for a single topology.
func runOne(graphKind string, n int, engine string, eng hybrid.Engine, seed, seed2 int64, cacheDir string) (report, error) {
	var rep report
	var g *hybrid.Graph
	rng := rand.New(rand.NewSource(seed))
	switch graphKind {
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		g = hybrid.GridGraph(side, side)
	case "path":
		g = hybrid.PathGraph(n)
	case "cycle":
		g = hybrid.CycleGraph(n)
	case "tree":
		g = hybrid.RandomTreeGraph(n, rng)
	case "sparse":
		g = hybrid.SparseGraph(n, 1.2, rng)
	case "geometric":
		g = hybrid.GeometricGraph(n, 0.15, rng)
	default:
		return rep, fmt.Errorf("unknown graph kind %q", graphKind)
	}

	rep = report{Graph: graphKind, N: g.N(), Engine: engine, Seed: seed, Seed2: seed2}
	newNet := func(s int64) *hybrid.Network {
		return hybrid.New(g, hybrid.WithSeed(s), hybrid.WithEngine(eng), hybrid.WithCacheDir(cacheDir))
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

	// Cold run + timed save.
	coldNet := newNet(seed)
	start := time.Now()
	cold, err := coldNet.APSP()
	if err != nil {
		return rep, err
	}
	rep.ColdWallMS = ms(time.Since(start))
	rep.ColdRounds = cold.Metrics.Rounds
	start = time.Now()
	if err := coldNet.SaveCache(); err != nil {
		return rep, err
	}
	rep.SaveMS = ms(time.Since(start))
	structInfo, seedInfo := coldNet.CacheFiles()
	if !structInfo.Exists || !seedInfo.Exists {
		return rep, fmt.Errorf("cache files missing after save")
	}
	rep.StructBytes, rep.SeedBytes = structInfo.Bytes, seedInfo.Bytes
	rep.TotalBytes = structInfo.Bytes + seedInfo.Bytes

	// Timed load + warm run.
	warmNet := newNet(seed)
	start = time.Now()
	status, err := warmNet.LoadCache()
	if err != nil {
		return rep, err
	}
	rep.LoadMS = ms(time.Since(start))
	if !status.Seed || !status.Structural {
		return rep, fmt.Errorf("warm load restored %+v, want both sections", status)
	}
	start = time.Now()
	warm, err := warmNet.APSP()
	if err != nil {
		return rep, err
	}
	rep.WarmWallMS = ms(time.Since(start))
	rep.WarmRounds = warm.Metrics.Rounds
	if !reflect.DeepEqual(cold.Dist, warm.Dist) {
		return rep, fmt.Errorf("warm distances diverge from cold")
	}

	// Cross-seed: cold reference without cache, then the structural-only
	// warm start.
	start = time.Now()
	crossCold, err := hybrid.New(g, hybrid.WithSeed(seed2), hybrid.WithEngine(eng)).APSP()
	if err != nil {
		return rep, err
	}
	rep.CrossColdWallMS = ms(time.Since(start))
	rep.CrossColdRounds = crossCold.Metrics.Rounds

	crossNet := newNet(seed2)
	status, err = crossNet.LoadCache()
	if err != nil {
		return rep, err
	}
	if !status.Structural || status.Seed {
		return rep, fmt.Errorf("cross-seed load restored %+v, want structural only", status)
	}
	start = time.Now()
	cross, err := crossNet.APSP()
	if err != nil {
		return rep, err
	}
	rep.CrossSeedWallMS = ms(time.Since(start))
	rep.CrossSeedRounds = cross.Metrics.Rounds
	if !reflect.DeepEqual(crossCold.Dist, cross.Dist) {
		return rep, fmt.Errorf("cross-seed distances diverge from that seed's cold run")
	}
	if !(rep.WarmRounds < rep.CrossSeedRounds && rep.CrossSeedRounds < rep.CrossColdRounds) {
		return rep, fmt.Errorf("cross-seed rounds %d not strictly between warm %d and cold %d",
			rep.CrossSeedRounds, rep.WarmRounds, rep.CrossColdRounds)
	}
	return rep, nil
}
