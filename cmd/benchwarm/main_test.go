package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunEmitsReport drives the whole benchmark in-process on a small grid
// and checks the emitted JSON: schema fields present, the measured
// invariants (warm < cross-seed < cold rounds, non-empty cache files)
// already self-verified by run, and the file parseable by consumers.
func TestRunEmitsReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_warmstart.json")
	if err := run("grid", 49, "step", 1, 2, out, filepath.Join(dir, "cache")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if rep.N != 49 || rep.Graph != "grid" || rep.Engine != "step" {
		t.Errorf("report identity %+v", rep)
	}
	if rep.StructBytes <= 0 || rep.SeedBytes <= 0 || rep.TotalBytes != rep.StructBytes+rep.SeedBytes {
		t.Errorf("report sizes %+v", rep)
	}
	if !(rep.WarmRounds < rep.CrossSeedRounds && rep.CrossSeedRounds < rep.CrossColdRounds) {
		t.Errorf("round ordering not strictly between: %+v", rep)
	}
	if rep.ColdWallMS <= 0 || rep.SaveMS <= 0 || rep.LoadMS <= 0 {
		t.Errorf("missing timings: %+v", rep)
	}
}

// TestRunRejectsBadFlags pins the error exits.
func TestRunRejectsBadFlags(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")
	if err := run("torus", 49, "step", 1, 2, out, dir); err == nil {
		t.Error("unknown graph accepted")
	}
	if err := run("grid", 49, "warp", 1, 2, out, dir); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestRunOtherGraphs smokes the remaining generator branches.
func TestRunOtherGraphs(t *testing.T) {
	for _, kind := range []string{"path", "cycle", "sparse"} {
		dir := t.TempDir()
		if err := run(kind, 24, "step", 1, 2, filepath.Join(dir, "o.json"), dir); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}
