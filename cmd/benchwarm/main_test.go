package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// readRows parses an emitted BENCH_warmstart.json row array.
func readRows(t *testing.T, path string) []report {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []report
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	return rows
}

// TestRunEmitsReport drives the whole benchmark in-process on a small grid
// and checks the emitted JSON: schema fields present, the measured
// invariants (warm < cross-seed < cold rounds, non-empty cache files)
// already self-verified by run, and the file parseable by consumers.
func TestRunEmitsReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_warmstart.json")
	if err := run("grid", 49, "step", 1, 2, out, filepath.Join(dir, "cache")); err != nil {
		t.Fatal(err)
	}
	rows := readRows(t, out)
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	rep := rows[0]
	if rep.N != 49 || rep.Graph != "grid" || rep.Engine != "step" {
		t.Errorf("report identity %+v", rep)
	}
	if rep.StructBytes <= 0 || rep.SeedBytes <= 0 || rep.TotalBytes != rep.StructBytes+rep.SeedBytes {
		t.Errorf("report sizes %+v", rep)
	}
	if !(rep.WarmRounds < rep.CrossSeedRounds && rep.CrossSeedRounds < rep.CrossColdRounds) {
		t.Errorf("round ordering not strictly between: %+v", rep)
	}
	if rep.ColdWallMS <= 0 || rep.SaveMS <= 0 || rep.LoadMS <= 0 {
		t.Errorf("missing timings: %+v", rep)
	}
}

// TestRunTopologyRows pins the multi-topology sweep: a comma-separated
// -graph list must produce one row per topology in order, including the
// irregular-cluster tree and geometric rows the nightly job tracks.
func TestRunTopologyRows(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_warmstart.json")
	if err := run("grid,tree,geometric", 49, "step", 1, 2, out, filepath.Join(dir, "cache")); err != nil {
		t.Fatal(err)
	}
	rows := readRows(t, out)
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for i, want := range []string{"grid", "tree", "geometric"} {
		rep := rows[i]
		if rep.Graph != want {
			t.Errorf("row %d is %q, want %q", i, rep.Graph, want)
			continue
		}
		if !(rep.WarmRounds < rep.CrossSeedRounds && rep.CrossSeedRounds < rep.CrossColdRounds) {
			t.Errorf("%s round ordering not strictly between: %+v", want, rep)
		}
		if rep.StructBytes <= 0 || rep.SeedBytes <= 0 {
			t.Errorf("%s cache files empty: %+v", want, rep)
		}
	}
}

// TestRunRejectsBadFlags pins the error exits.
func TestRunRejectsBadFlags(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")
	if err := run("torus", 49, "step", 1, 2, out, dir); err == nil {
		t.Error("unknown graph accepted")
	}
	if err := run("grid,torus", 49, "step", 1, 2, out, dir); err == nil {
		t.Error("unknown graph inside a list accepted")
	}
	if err := run("grid", 49, "warp", 1, 2, out, dir); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestRunOtherGraphs smokes the remaining generator branches.
func TestRunOtherGraphs(t *testing.T) {
	for _, kind := range []string{"path", "cycle", "sparse"} {
		dir := t.TempDir()
		if err := run(kind, 24, "step", 1, 2, filepath.Join(dir, "o.json"), dir); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}
