// CLI-level tests mirroring cmd/hybridsim's testable run() pattern: the
// server is driven in-process on an ephemeral port — start, poll until
// healthy, query, assert warm-start engagement via /stats, and shut down
// cleanly through context cancellation with exit 0.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/replay"
)

// syncBuffer guards a bytes.Buffer: run writes from its own goroutine
// while the test may still be polling.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// server is one in-process hybridserve run.
type server struct {
	addr           string
	cancel         context.CancelFunc
	done           chan int
	stdout, stderr *syncBuffer
}

// startServer launches run() with -addr 127.0.0.1:0 appended and waits
// for the listener address.
func startServer(t *testing.T, args ...string) *server {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{cancel: cancel, done: make(chan int, 1), stdout: &syncBuffer{}, stderr: &syncBuffer{}}
	ready := make(chan string, 1)
	go func() {
		s.done <- run(ctx, append(args, "-addr", "127.0.0.1:0"), s.stdout, s.stderr, ready)
	}()
	select {
	case s.addr = <-ready:
	case code := <-s.done:
		t.Fatalf("run exited %d before listening, stderr:\n%s", code, s.stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatal("listener never came up")
	}
	t.Cleanup(cancel)
	return s
}

// stop cancels the run context and returns the exit code.
func (s *server) stop(t *testing.T) int {
	t.Helper()
	s.cancel()
	select {
	case code := <-s.done:
		return code
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after cancel")
		return -1
	}
}

// waitHealthy polls /healthz until it answers 200 (the APSP build has
// published the tables).
func (s *server) waitHealthy(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + s.addr + "/healthz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("server never became healthy, stderr:\n%s", s.stderr.String())
}

func (s *server) getJSON(t *testing.T, path string, into any) int {
	t.Helper()
	resp, err := http.Get("http://" + s.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: body %q: %v", path, body, err)
		}
	}
	return resp.StatusCode
}

// TestRunServeE2EWarmStart is the end-to-end story on a seeded 7×7 grid:
// a cold run serves the known corner-to-corner distance 12, then a second
// run against the same cache directory warm-starts — /stats shows the
// warm seed section engaged and an APSP round count strictly below the
// cold build — and both shut down with exit 0 on context cancel.
func TestRunServeE2EWarmStart(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-graph", "grid", "-n", "49", "-seed", "42", "-cache-dir", dir}

	cold := startServer(t, args...)
	cold.waitHealthy(t)

	var d serve.DistanceResponse
	if code := cold.getJSON(t, "/distance?s=0&t=48", &d); code != http.StatusOK {
		t.Fatalf("distance status %d", code)
	}
	if d.Unreachable || d.Distance != 12 {
		t.Errorf("7x7 grid corner distance = %+v, want 12", d)
	}
	var r serve.RouteResponse
	if code := cold.getJSON(t, "/route?s=0&t=48", &r); code != http.StatusOK {
		t.Fatalf("route status %d", code)
	}
	if r.Weight != 12 || r.Hops != 12 || len(r.Path) != 13 || r.Path[0] != 0 || r.Path[12] != 48 {
		t.Errorf("route 0->48 = %+v, want a 12-hop shortest path", r)
	}

	var coldStats serve.StatsResponse
	cold.getJSON(t, "/stats", &coldStats)
	if coldStats.WarmSeed || coldStats.WarmStructural {
		t.Errorf("cold run claims a warm start: %+v", coldStats)
	}
	if coldStats.Rounds == 0 || coldStats.N != 49 {
		t.Errorf("cold stats malformed: %+v", coldStats)
	}
	if code := cold.stop(t); code != 0 {
		t.Fatalf("cold run exited %d, stderr:\n%s", code, cold.stderr.String())
	}
	if !strings.Contains(cold.stderr.String(), "saved warm-start cache") {
		t.Errorf("cold run did not save the cache:\n%s", cold.stderr.String())
	}

	warm := startServer(t, args...)
	warm.waitHealthy(t)
	var warmStats serve.StatsResponse
	warm.getJSON(t, "/stats", &warmStats)
	if !warmStats.WarmSeed || !warmStats.WarmStructural {
		t.Errorf("second run did not warm-start: %+v, stderr:\n%s", warmStats, warm.stderr.String())
	}
	if warmStats.Rounds >= coldStats.Rounds {
		t.Errorf("warm start did not engage: warm %d rounds, cold %d", warmStats.Rounds, coldStats.Rounds)
	}
	var wd serve.DistanceResponse
	warm.getJSON(t, "/distance?s=0&t=48", &wd)
	if wd.Distance != 12 {
		t.Errorf("warm distance %+v", wd)
	}
	if code := warm.stop(t); code != 0 {
		t.Fatalf("warm run exited %d", code)
	}
}

// TestRunServeNotReadyBefore503 pins the starting window: the listener
// answers 503 on /healthz until the build publishes (observable because
// the listener comes up before the APSP rounds run).
func TestRunServeNotReadyBefore503(t *testing.T) {
	s := startServer(t, "-graph", "grid", "-n", "256", "-seed", "1")
	// Immediately after the listener is up the build is still running on
	// a 256-node grid; tolerate the race where it finishes first.
	code := s.getJSON(t, "/healthz", nil)
	if code != http.StatusServiceUnavailable && code != http.StatusOK {
		t.Errorf("/healthz during build: status %d", code)
	}
	s.waitHealthy(t)
	if code := s.stop(t); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

// TestRunServeCancelDuringBuild cancels mid-APSP: the run must abort
// promptly and exit non-zero with a cancellation message, mirroring
// hybridsim's -timeout contract.
func TestRunServeCancelDuringBuild(t *testing.T) {
	s := startServer(t, "-graph", "grid", "-n", "1024", "-seed", "1")
	time.Sleep(50 * time.Millisecond)
	if code := s.stop(t); code == 0 {
		t.Fatal("cancelled build exited 0")
	}
	if !strings.Contains(s.stderr.String(), "build cancelled") {
		t.Errorf("stderr does not report the cancellation:\n%s", s.stderr.String())
	}
}

// TestRunServeBenchMode drives -bench end to end: the run replays the
// load against itself, writes a parseable report with every configured
// level, and exits 0 without needing a cancel.
func TestRunServeBenchMode(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")
	var stdout, stderr syncBuffer
	code := run(context.Background(), []string{
		"-graph", "grid", "-n", "49", "-seed", "42", "-addr", "127.0.0.1:0",
		"-bench", "-bench-queries", "600", "-bench-levels", "1,2,4", "-bench-out", out,
	}, &stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("bench run exited %d, stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep replay.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Graph != "grid" || rep.N != 49 || rep.TotalQueries != 1800 || len(rep.Levels) != 3 {
		t.Errorf("report identity %+v", rep)
	}
	for i, want := range []int{1, 2, 4} {
		lr := rep.Levels[i]
		if lr.Concurrency != want || lr.Queries != 600 || lr.Errors != 0 || lr.QPS <= 0 {
			t.Errorf("level %d malformed: %+v", i, lr)
		}
	}
	if !strings.Contains(stderr.String(), "bench c=4:") {
		t.Errorf("no bench summary on stderr:\n%s", stderr.String())
	}
}

// TestRunServeBenchDeterministicCounts replays the same bench twice: all
// aggregate counts in the emitted reports must match exactly.
func TestRunServeBenchDeterministicCounts(t *testing.T) {
	runOnce := func(out string) replay.Report {
		var stdout, stderr syncBuffer
		code := run(context.Background(), []string{
			"-graph", "grid", "-n", "49", "-seed", "42", "-addr", "127.0.0.1:0",
			"-bench", "-bench-queries", "500", "-bench-levels", "1,2", "-bench-out", out,
		}, &stdout, &stderr, nil)
		if code != 0 {
			t.Fatalf("bench run exited %d, stderr:\n%s", code, stderr.String())
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var rep replay.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	dir := t.TempDir()
	a := runOnce(filepath.Join(dir, "a.json"))
	b := runOnce(filepath.Join(dir, "b.json"))
	if a.APSPRounds != b.APSPRounds || a.TotalQueries != b.TotalQueries {
		t.Errorf("build/total counts differ: %+v vs %+v", a, b)
	}
	for i := range a.Levels {
		la, lb := a.Levels[i], b.Levels[i]
		if la.DistanceQueries != lb.DistanceQueries || la.RouteQueries != lb.RouteQueries ||
			la.Unreachable != lb.Unreachable || la.Queries != lb.Queries {
			t.Errorf("level %d aggregate counts differ: %+v vs %+v", i, la, lb)
		}
	}
}

// TestRunServeBadFlags pins the error exits.
func TestRunServeBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-graph", "torus"},
		{"-engine", "warp"},
		{"-bench-levels", "1,zero"},
		{"-bench-levels", "0"},
		{"-not-a-flag"},
		{"-dist-connect", "tcp:127.0.0.1:1"}, // requires -engine dist
		{"-engine", "step", "-dist-window", "2"},
		{"-engine", "legacy", "-workers", "2"},
	} {
		var stdout, stderr syncBuffer
		if code := run(context.Background(), args, &stdout, &stderr, nil); code == 0 {
			t.Errorf("args %v exited 0", args)
		}
	}
}

// TestRunServeListenFailure pins the bind-error exit.
func TestRunServeListenFailure(t *testing.T) {
	blocker := startServer(t, "-graph", "path", "-n", "8")
	defer blocker.stop(t)
	var stdout, stderr syncBuffer
	code := run(context.Background(), []string{
		"-graph", "path", "-n", "8", "-addr", blocker.addr,
	}, &stdout, &stderr, nil)
	if code == 0 {
		t.Fatal("double bind exited 0")
	}
	if !strings.Contains(stderr.String(), "listen") {
		t.Errorf("stderr does not report the bind failure:\n%s", stderr.String())
	}
}

// TestRunServeReloadTriggers exercises both reload triggers against a live
// in-process server: POST /admin/reload bumps the generation counter, and
// a SIGHUP delivered to our own process drives the same rebuild path. Both
// must leave the server healthy and serving correct distances.
func TestRunServeReloadTriggers(t *testing.T) {
	s := startServer(t, "-graph", "grid", "-n", "25", "-seed", "3")
	s.waitHealthy(t)

	// Trigger 1: the admin endpoint.
	resp, err := http.Post("http://"+s.addr+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr serve.ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.Generation != 1 {
		t.Fatalf("POST /admin/reload = %d %+v, want 200 generation 1", resp.StatusCode, rr)
	}

	// Trigger 2: SIGHUP to our own process; the run goroutine's signal
	// loop picks it up. Poll /stats until the second reload lands.
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var stats serve.StatsResponse
		s.getJSON(t, "/stats", &stats)
		if stats.Reloads >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload never landed (reloads=%d), stderr:\n%s", stats.Reloads, s.stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The reloaded generation must keep serving exact distances: corner to
	// corner on a 5×5 grid is 8.
	var dr serve.DistanceResponse
	if code := s.getJSON(t, "/distance?s=0&t=24", &dr); code != http.StatusOK || dr.Distance != 8 {
		t.Fatalf("distance after reloads = %d (%+v), want 200 / 8", code, dr)
	}
	if code := s.stop(t); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
}

// TestRunServeSlowlorisCut pins the slowloris guard: a connection that
// sends a partial header and then stalls is cut by ReadHeaderTimeout
// instead of holding its goroutine forever, and the server keeps serving
// well-behaved clients.
func TestRunServeSlowlorisCut(t *testing.T) {
	s := startServer(t, "-graph", "path", "-n", "8", "-read-header-timeout", "200ms")
	s.waitHealthy(t)

	conn, err := net.Dial("tcp", s.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: slow\r\nX-Dribble: ")); err != nil {
		t.Fatal(err)
	}
	// Never finish the headers: the server must hang up on us, promptly.
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err = conn.Read(buf); err != nil {
			break
		}
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never cut the stalled-header connection")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("stalled connection survived %v, want a cut near the 200ms header timeout", elapsed)
	}

	if code := s.getJSON(t, "/healthz", nil); code != http.StatusOK {
		t.Errorf("/healthz after slowloris cut: status %d", code)
	}
	if code := s.stop(t); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

// TestRunServeSIGTERMMidTraffic replicates main()'s signal wiring and
// delivers a real SIGTERM to our own process while query traffic is
// flowing: the drain must complete and the run exit 0.
func TestRunServeSIGTERMMidTraffic(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-graph", "grid", "-n", "49", "-seed", "42", "-addr", "127.0.0.1:0"},
			stdout, stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("run exited %d before listening, stderr:\n%s", code, stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatal("listener never came up")
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("never healthy, stderr:\n%s", stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}

	var served atomic.Int64
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopTraffic:
					return
				default:
				}
				resp, err := http.Get("http://" + addr + "/distance?s=0&t=48")
				if err != nil {
					continue // refused during/after drain is expected
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
				}
			}
		}()
	}
	// Let real traffic land before the signal.
	for served.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var code int
	select {
	case code = <-done:
	case <-time.After(30 * time.Second):
		close(stopTraffic)
		t.Fatal("run did not exit after SIGTERM")
	}
	close(stopTraffic)
	wg.Wait()
	if code != 0 {
		t.Fatalf("SIGTERM mid-traffic exited %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "shutting down") {
		t.Errorf("no shutdown message:\n%s", stderr.String())
	}
	if served.Load() == 0 {
		t.Error("no traffic was served before the signal")
	}
}
