// Command hybridserve is the resident query server: it loads a generated
// graph (same flags as hybridsim), warm-starts from the persistent v2
// snapshot cache when one is available, runs APSP once on the step
// engine, then keeps the distance and next-hop tables in memory behind an
// HTTP/JSON API — the paper's "efficient IP-routing" application as a
// long-lived service instead of a one-shot batch run.
//
//	hybridserve -graph grid -n 1024 -cache-dir .hybcache -addr :8080
//	curl 'localhost:8080/distance?s=0&t=1023'
//	curl 'localhost:8080/route?s=0&t=1023'
//	curl 'localhost:8080/stats'
//
// The listener starts before the APSP build, so /healthz answers 503
// ("starting") until the tables are published and 200 afterwards — poll
// it to know when the service is queryable. With -bench the program
// instead replays a deterministic zipfian query stream against itself at
// the -bench-levels concurrency levels, writes the latency/throughput
// report to -bench-out (BENCH_serve.json), and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	hybrid "repro"
	"repro/internal/serve"
	"repro/internal/serve/replay"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the whole program behind flag parsing; factored from main so the
// CLI-level tests can drive it in-process. ready, when non-nil, receives
// the bound listen address once the HTTP listener is accepting (the e2e
// test uses it with -addr 127.0.0.1:0). Cancelling ctx shuts the server
// down gracefully; a clean shutdown exits 0.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("hybridserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	graphKind := fs.String("graph", "grid", "graph: grid|path|cycle|tree|sparse|geometric|barbell")
	n := fs.Int("n", 1024, "number of nodes")
	seed := fs.Int64("seed", 1, "random seed")
	maxW := fs.Int64("maxw", 1, "max edge weight (1 = unweighted)")
	engine := fs.String("engine", "step", "round engine: sharded|step|legacy|dist")
	workers := fs.Int("workers", 0, "dist engine worker-process count (0 = default)")
	distConnect := fs.String("dist-connect", "", "comma-separated pre-started worker addresses for the dist engine (connect mode)")
	distWindow := fs.Int("dist-window", 0, "dist engine round-pipelining window (0 = lockstep)")
	cacheDir := fs.String("cache-dir", "", "warm-start cache directory (load before the build, save after)")
	addr := fs.String("addr", ":8080", "HTTP listen address (use 127.0.0.1:0 for an ephemeral port)")
	maxInflight := fs.Int("max-inflight", 256, "max concurrently served query requests before shedding 429s (0 = unlimited)")
	requestTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request deadline on query endpoints, 503 past it (0 = none)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "time limit for reading a request's headers — the slowloris guard (0 = none)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "time limit for reading a whole request (0 = none)")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "time limit for writing a response; raise it if reloads of very large graphs exceed it (0 = none)")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "keep-alive connection idle timeout (0 = none)")
	bench := fs.Bool("bench", false, "replay a query load against the server, write the report, and exit")
	benchQueries := fs.Int("bench-queries", 40000, "queries replayed at EACH concurrency level")
	benchLevels := fs.String("bench-levels", "1,4,16", "comma-separated concurrency levels to sweep")
	benchOut := fs.String("bench-out", "BENCH_serve.json", "benchmark report output path")
	zipfS := fs.Float64("zipf-s", 1.2, "zipf skew of the replayed source distribution (> 1)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	fatalf := func(format string, a ...interface{}) int {
		fmt.Fprintf(stderr, format+"\n", a...)
		return 1
	}

	var eng hybrid.Engine
	switch *engine {
	case "sharded":
		eng = hybrid.EngineSharded
	case "step":
		eng = hybrid.EngineStep
	case "legacy":
		eng = hybrid.EngineLegacy
	case "dist":
		eng = hybrid.EngineDist
	default:
		return fatalf("unknown engine %q", *engine)
	}
	if (*distConnect != "" || *distWindow > 0 || *workers > 0) && eng != hybrid.EngineDist {
		return fatalf("-workers, -dist-connect and -dist-window require -engine dist")
	}

	rng := rand.New(rand.NewSource(*seed))
	var g *hybrid.Graph
	switch *graphKind {
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = hybrid.GridGraph(side, side)
	case "path":
		g = hybrid.PathGraph(*n)
	case "cycle":
		g = hybrid.CycleGraph(*n)
	case "tree":
		g = hybrid.RandomTreeGraph(*n, rng)
	case "sparse":
		g = hybrid.SparseGraph(*n, 1.2, rng)
	case "geometric":
		g = hybrid.GeometricGraph(*n, 0.15, rng)
	case "barbell":
		g = hybrid.BarbellGraph(*n/3, *n/3)
	default:
		return fatalf("unknown graph kind %q", *graphKind)
	}
	if *maxW > 1 {
		g = hybrid.WithRandomWeights(g, *maxW, rng)
	}

	var levels []int
	for _, part := range strings.Split(*benchLevels, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c <= 0 {
			return fatalf("bad -bench-levels entry %q", part)
		}
		levels = append(levels, c)
	}

	// Accept connections before computing: /healthz reports "starting"
	// until the tables are published, so clients can poll for readiness
	// while the HYBRID rounds run.
	srv := serve.New(nil)
	srv.SetMaxInflight(*maxInflight)
	srv.SetRequestTimeout(*requestTimeout)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fatalf("listen %s: %v", *addr, err)
	}
	// Every connection-level timeout is set: without them one stalled or
	// malicious client (slowloris: headers fed a byte at a time) holds a
	// connection and its goroutine forever.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	shutdown := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(sctx)
		<-serveErr // always http.ErrServerClosed after Shutdown
	}

	opts := []hybrid.Option{hybrid.WithSeed(*seed), hybrid.WithEngine(eng), hybrid.WithContext(ctx)}
	if *workers > 0 {
		opts = append(opts, hybrid.WithWorkers(*workers))
	}
	if *distConnect != "" {
		opts = append(opts, hybrid.WithDistConnect(strings.Split(*distConnect, ",")...))
	}
	if *distWindow > 0 {
		opts = append(opts, hybrid.WithDistWindow(*distWindow))
	}
	if *cacheDir != "" {
		opts = append(opts, hybrid.WithCacheDir(*cacheDir))
	}
	net_ := hybrid.New(g, opts...)
	var cacheStatus hybrid.CacheLoadStatus
	if *cacheDir != "" {
		status, err := net_.LoadCache()
		cacheStatus = status
		switch {
		case err != nil:
			fmt.Fprintf(stderr, "warning: %v (building cold)\n", err)
		case status.Seed:
			fmt.Fprintf(stderr, "warm start: loaded structural+seed sections from %s\n", *cacheDir)
		case status.Structural:
			fmt.Fprintf(stderr, "warm start: loaded structural section only (cross-seed) from %s\n", *cacheDir)
		}
	}

	// build runs one full APSP + table derivation under the same graph and
	// engine configuration; the initial publish and every reload (SIGHUP or
	// POST /admin/reload) go through this exact closure.
	build := func() (*serve.Tables, error) {
		buildStart := time.Now()
		res, err := net_.APSP()
		if err != nil {
			return nil, err
		}
		next := res.NextHops(g)
		buildMS := float64(time.Since(buildStart).Microseconds()) / 1000
		return serve.NewTables(g, res.Dist, next, serve.BuildInfo{
			Graph:          *graphKind,
			Seed:           *seed,
			Engine:         *engine,
			Rounds:         res.Metrics.Rounds,
			WarmStructural: cacheStatus.Structural,
			WarmSeed:       cacheStatus.Seed,
			BuildMS:        buildMS,
		})
	}

	tables, err := build()
	if err != nil {
		shutdown()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return fatalf("build cancelled: %v", err)
		}
		return fatalf("apsp: %v", err)
	}
	srv.Publish(tables)
	srv.SetRebuild(build)
	fmt.Fprintf(stdout, "serving %s n=%d m=%d: apsp built in %d rounds (%.0f ms), warm structural=%v seed=%v\n",
		*graphKind, g.N(), g.M(), tables.Info.Rounds, tables.Info.BuildMS, cacheStatus.Structural, cacheStatus.Seed)

	if *cacheDir != "" {
		if err := net_.SaveCache(); err != nil {
			fmt.Fprintf(stderr, "warning: saving warm-start cache: %v\n", err)
		} else {
			fmt.Fprintf(stderr, "saved warm-start cache to %s\n", *cacheDir)
		}
	}

	if *bench {
		code := runBench(stdout, stderr, tables, "http://"+ln.Addr().String(), replay.Config{
			N:       g.N(),
			Queries: *benchQueries,
			Levels:  levels,
			Seed:    *seed,
			ZipfS:   *zipfS,
			// One route walk per four lookups: routes dominate response
			// size, lookups dominate count — roughly an IP control/data
			// plane mix.
			RouteEvery: 4,
		}, *benchOut)
		shutdown()
		return code
	}

	// SIGHUP is the conventional daemon reload trigger; it shares the
	// rebuild path with POST /admin/reload, so both swap generations
	// atomically while queries keep flowing from the old tables.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintf(stderr, "shutting down\n")
			shutdown()
			return 0
		case <-hup:
			fmt.Fprintf(stderr, "SIGHUP: rebuilding tables\n")
			if t, err := srv.Reload(); err != nil {
				fmt.Fprintf(stderr, "warning: reload failed: %v (keeping current tables)\n", err)
			} else {
				fmt.Fprintf(stderr, "reload %d complete: %d rounds (%.0f ms)\n",
					srv.Reloads(), t.Info.Rounds, t.Info.BuildMS)
			}
		}
	}
}

// runBench replays the configured load against baseURL and writes the
// report JSON to outPath.
func runBench(stdout, stderr io.Writer, tables *serve.Tables, baseURL string, cfg replay.Config, outPath string) int {
	cfg.BaseURL = baseURL
	results, err := replay.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "replay: %v\n", err)
		return 1
	}
	rep := replay.Report{
		Graph:          tables.Info.Graph,
		N:              tables.Info.N,
		Seed:           tables.Info.Seed,
		Engine:         tables.Info.Engine,
		WarmStructural: tables.Info.WarmStructural,
		WarmSeed:       tables.Info.WarmSeed,
		APSPRounds:     tables.Info.Rounds,
		BuildMS:        tables.Info.BuildMS,
		ReplaySeed:     cfg.Seed,
		ZipfS:          cfg.ZipfS,
		TotalQueries:   cfg.Queries * len(cfg.Levels),
		Levels:         results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "marshal report: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "write report: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s", data)
	for _, lr := range results {
		fmt.Fprintf(stderr, "bench c=%d: %d queries in %.0f ms (%.0f qps), p50=%.0fµs p95=%.0fµs p99=%.0fµs\n",
			lr.Concurrency, lr.Queries, lr.WallMS, lr.QPS, lr.P50us, lr.P95us, lr.P99us)
	}
	return 0
}
