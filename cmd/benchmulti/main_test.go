package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// readRows parses an emitted benchmulti JSON row array.
func readRows(t *testing.T, path string) []report {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []report
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	return rows
}

// TestRunEmitsReport drives the step sweep in-process on a small grid and
// checks the emitted JSON: one row per GOMAXPROCS value in order, matching
// checksums and round counts across rows (self-verified by run), positive
// timings, and speedup anchored at 1.0 for the first row.
func TestRunEmitsReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_multicore.json")
	if err := run("grid", 49, "step", "1,2", "", 1, out); err != nil {
		t.Fatal(err)
	}
	rows := readRows(t, out)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for i, want := range []int{1, 2} {
		row := rows[i]
		if row.Gomaxprocs != want {
			t.Errorf("row %d gomaxprocs = %d, want %d", i, row.Gomaxprocs, want)
		}
		if row.Graph != "grid" || row.N != 49 || row.Engine != "step" {
			t.Errorf("row %d identity %+v", i, row)
		}
		if row.Workers != 0 {
			t.Errorf("row %d: step row carries workers=%d", i, row.Workers)
		}
		if row.WallMS <= 0 || row.Rounds <= 0 || row.Checksum == "" {
			t.Errorf("row %d measurements %+v", i, row)
		}
		if row.Checksum != rows[0].Checksum || row.Rounds != rows[0].Rounds {
			t.Errorf("row %d diverges from row 0: %+v vs %+v", i, row, rows[0])
		}
	}
	if rows[0].Speedup != 1.0 {
		t.Errorf("first row speedup = %v, want 1.0", rows[0].Speedup)
	}
}

// TestRunDistEmitsReport drives the dist sweep: one row per worker count,
// each run spawning real worker processes, with the identity-of-results
// guard enforced across worker counts before the JSON is written.
func TestRunDistEmitsReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_dist.json")
	if err := run("grid", 36, "dist", "", "1,2", 5, out); err != nil {
		t.Fatal(err)
	}
	rows := readRows(t, out)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for i, want := range []int{1, 2} {
		row := rows[i]
		if row.Workers != want || row.Engine != "dist" {
			t.Errorf("row %d = %+v, want dist workers=%d", i, row, want)
		}
		if row.WallMS <= 0 || row.Rounds <= 0 || row.Checksum == "" {
			t.Errorf("row %d measurements %+v", i, row)
		}
		if row.Checksum != rows[0].Checksum || row.Rounds != rows[0].Rounds {
			t.Errorf("row %d diverges from row 0: %+v vs %+v", i, row, rows[0])
		}
	}
	if rows[0].Speedup != 1.0 {
		t.Errorf("first row speedup = %v, want 1.0", rows[0].Speedup)
	}
}

// TestRunRejectsBadFlags pins the error exits.
func TestRunRejectsBadFlags(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "o.json")
	if err := run("torus", 49, "step", "1", "", 1, out); err == nil {
		t.Error("unknown graph accepted")
	}
	if err := run("grid", 49, "step", "", "", 1, out); err == nil {
		t.Error("empty procs accepted")
	}
	if err := run("grid", 49, "step", "1,zero", "", 1, out); err == nil {
		t.Error("non-numeric procs accepted")
	}
	if err := run("grid", 49, "step", "0", "", 1, out); err == nil {
		t.Error("zero procs accepted")
	}
	if err := run("grid", 49, "warp", "1", "1", 1, out); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run("grid", 49, "dist", "", "0", 1, out); err == nil {
		t.Error("zero workers accepted")
	}
	if err := run("grid", 49, "dist", "", "", 1, out); err == nil {
		t.Error("empty workers accepted")
	}
}

// TestRunOtherGraphs smokes the remaining generator branches.
func TestRunOtherGraphs(t *testing.T) {
	for _, kind := range []string{"path", "cycle", "tree", "sparse", "geometric"} {
		dir := t.TempDir()
		if err := run(kind, 24, "step", "1", "", 1, filepath.Join(dir, "o.json")); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

// TestCommittedBenchSchema guards the committed benchmark artifacts at the
// repository root: BENCH_multicore.json (step engine, ≥4 GOMAXPROCS rows)
// and BENCH_dist.json (dist engine, ≥3 worker rows) must parse against the
// report schema with consistent checksums — the same committed-artifact
// discipline BENCH_serve.json gets from its golden schema test.
func TestCommittedBenchSchema(t *testing.T) {
	checkRows := func(t *testing.T, path string, minRows int, engine string) {
		t.Helper()
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("committed %s missing: %v", filepath.Base(path), err)
		}
		rows := readRows(t, path)
		if len(rows) < minRows {
			t.Fatalf("committed sweep has %d rows, want >= %d", len(rows), minRows)
		}
		for i, row := range rows {
			if row.Engine != engine {
				t.Errorf("row %d engine %q, want %q", i, row.Engine, engine)
			}
			if row.Gomaxprocs < 1 || row.WallMS <= 0 || row.Rounds <= 0 || row.Checksum == "" {
				t.Errorf("row %d incomplete: %+v", i, row)
			}
			if engine == "dist" && row.Workers < 1 {
				t.Errorf("row %d missing workers: %+v", i, row)
			}
			if row.Checksum != rows[0].Checksum {
				t.Errorf("row %d checksum diverges: %+v", i, row)
			}
			if row.Graph == "" || row.N <= 0 {
				t.Errorf("row %d identity incomplete: %+v", i, row)
			}
		}
	}
	checkRows(t, filepath.Join("..", "..", "BENCH_multicore.json"), 4, "step")
	checkRows(t, filepath.Join("..", "..", "BENCH_dist.json"), 3, "dist")
}
