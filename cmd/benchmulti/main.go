// Command benchmulti measures round-engine scaling and emits a
// machine-readable report. In the default -engine step mode it sweeps
// GOMAXPROCS and writes BENCH_multicore.json: one row per core count, all
// solving the identical APSP instance with autotuned shard count and
// step-batch width. With -engine dist it instead sweeps the distributed
// engine's worker-process count and writes one row per -workers entry
// (BENCH_dist.json is the committed artifact) — the scaling axis is OS
// processes connected over the wire protocol, not scheduler threads. The
// committed files are the repository's record of how each configuration
// behaves; the scheduled CI job regenerates them on hosted runners, where
// the core count actually varies.
//
//	benchmulti -graph grid -n 1024 -procs 1,2,4,8
//	benchmulti -graph grid -n 1024 -engine dist -workers 1,2,4 -out BENCH_dist.json
//
// Every row self-verifies against the first: the distance matrices and
// round counts must be byte-identical across the sweep (engine results
// are independent of the parallel grain — the same property the
// differential tests pin for shard counts, batch widths, and worker
// counts), and the program exits non-zero if any row diverges, so the
// JSON is only written for sweeps whose correctness story holds.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	hybrid "repro"
)

// report is one row of the emitted JSON array.
type report struct {
	Graph      string `json:"graph"`
	N          int    `json:"n"`
	Seed       int64  `json:"seed"`
	Engine     string `json:"engine"`
	Gomaxprocs int    `json:"gomaxprocs"`
	Shards     int    `json:"shards"`
	StepBatch  int    `json:"step_batch"`
	// Workers is the dist engine's worker-process count; zero (omitted)
	// on step-engine rows, where processes play no part.
	Workers int `json:"workers,omitempty"`

	Rounds   int     `json:"rounds"`
	WallMS   float64 `json:"wall_ms"`
	Speedup  float64 `json:"speedup"`
	Checksum string  `json:"checksum"`
}

// label names a row in error messages by its sweep axis.
func (r report) label() string {
	if r.Engine == "dist" {
		return fmt.Sprintf("workers=%d", r.Workers)
	}
	return fmt.Sprintf("gomaxprocs=%d", r.Gomaxprocs)
}

func main() {
	graphKind := flag.String("graph", "grid", "graph: grid|path|cycle|tree|sparse|geometric")
	n := flag.Int("n", 1024, "number of nodes")
	engine := flag.String("engine", "step", "engine to sweep: step (GOMAXPROCS axis) | dist (worker-process axis)")
	procs := flag.String("procs", "1,2,4,8", "comma-separated GOMAXPROCS sweep (step engine)")
	workers := flag.String("workers", "1,2,4", "comma-separated worker-process sweep (dist engine)")
	seed := flag.Int64("seed", 1, "run seed")
	out := flag.String("out", "BENCH_multicore.json", "output JSON path")
	flag.Parse()

	if err := run(*graphKind, *n, *engine, *procs, *workers, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchmulti: %v\n", err)
		os.Exit(1)
	}
}

// buildGraph constructs the sweep's instance; every row reuses the same
// graph value, so the instance is identical by construction and only the
// engine's parallel grain varies.
func buildGraph(kind string, n int, seed int64) (*hybrid.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return hybrid.GridGraph(side, side), nil
	case "path":
		return hybrid.PathGraph(n), nil
	case "cycle":
		return hybrid.CycleGraph(n), nil
	case "tree":
		return hybrid.RandomTreeGraph(n, rng), nil
	case "sparse":
		return hybrid.SparseGraph(n, 1.2, rng), nil
	case "geometric":
		return hybrid.GeometricGraph(n, 0.15, rng), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

// parseSweep parses a comma-separated list of positive ints.
func parseSweep(name, list string) ([]int, error) {
	var vals []int
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad %s entry %q", name, f)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("%s is empty", name)
	}
	return vals, nil
}

// run executes the sweep and writes the row array to out. In step mode
// GOMAXPROCS is set per row and restored to the entry value before
// returning; in dist mode each row spawns its own worker processes and
// GOMAXPROCS is left alone.
func run(graphKind string, n int, engine, procsList, workersList string, seed int64, out string) error {
	g, err := buildGraph(graphKind, n, seed)
	if err != nil {
		return err
	}

	var rows []report
	switch engine {
	case "step":
		procs, err := parseSweep("-procs", procsList)
		if err != nil {
			return err
		}
		prev := runtime.GOMAXPROCS(0)
		defer runtime.GOMAXPROCS(prev)
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			net := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(hybrid.EngineStep),
				hybrid.WithShards(0), hybrid.WithStepBatch(-1))
			start := time.Now()
			res, err := net.APSP()
			if err != nil {
				return fmt.Errorf("gomaxprocs=%d: %w", p, err)
			}
			rows = append(rows, report{
				Graph:      graphKind,
				N:          g.N(),
				Seed:       seed,
				Engine:     "step",
				Gomaxprocs: p,
				Shards:     0,
				StepBatch:  -1,
				Rounds:     res.Metrics.Rounds,
				WallMS:     float64(time.Since(start).Microseconds()) / 1000,
				Checksum:   checksum(res.Dist),
			})
		}
	case "dist":
		workers, err := parseSweep("-workers", workersList)
		if err != nil {
			return err
		}
		for _, w := range workers {
			net := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(hybrid.EngineDist),
				hybrid.WithWorkers(w))
			start := time.Now()
			res, err := net.APSP()
			if err != nil {
				return fmt.Errorf("workers=%d: %w", w, err)
			}
			rows = append(rows, report{
				Graph:      graphKind,
				N:          g.N(),
				Seed:       seed,
				Engine:     "dist",
				Gomaxprocs: runtime.GOMAXPROCS(0),
				Workers:    w,
				Rounds:     res.Metrics.Rounds,
				WallMS:     float64(time.Since(start).Microseconds()) / 1000,
				Checksum:   checksum(res.Dist),
			})
		}
	default:
		return fmt.Errorf("unknown engine %q (want step or dist)", engine)
	}

	// Cross-row self-verification: the parallel grain must not change the
	// answer (or the round count).
	for _, row := range rows[1:] {
		if row.Checksum != rows[0].Checksum {
			return fmt.Errorf("%s: distance checksum %s differs from %s's %s",
				row.label(), row.Checksum, rows[0].label(), rows[0].Checksum)
		}
		if row.Rounds != rows[0].Rounds {
			return fmt.Errorf("%s: %d rounds differ from %s's %d",
				row.label(), row.Rounds, rows[0].label(), rows[0].Rounds)
		}
	}
	for i := range rows {
		rows[i].Speedup = rows[0].WallMS / rows[i].WallMS
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s", data)
	return nil
}

// checksum is an FNV-1a digest of the dense distance matrix, used to
// compare rows without holding every matrix in memory.
func checksum(dist [][]int64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, row := range dist {
		for _, d := range row {
			binary.LittleEndian.PutUint64(buf[:], uint64(d))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
