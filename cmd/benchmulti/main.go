// Command benchmulti measures the step engine's multicore scaling and
// emits a machine-readable BENCH_multicore.json: one row per GOMAXPROCS
// setting, all solving the identical APSP instance with autotuned shard
// count and step-batch width. The committed file is the repository's
// record of how the first real multicore configuration behaves; the
// scheduled CI job regenerates it on hosted runners, where the core count
// actually varies.
//
//	benchmulti -graph grid -n 1024 -procs 1,2,4,8
//
// Every row self-verifies against the first: the distance matrices must
// be byte-identical across GOMAXPROCS values (engine results are
// independent of the parallel grain — the same property the differential
// tests pin for shard counts and batch widths), and the program exits
// non-zero if any row diverges, so the JSON is only written for sweeps
// whose correctness story holds.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	hybrid "repro"
)

// report is one row of the BENCH_multicore.json array.
type report struct {
	Graph      string `json:"graph"`
	N          int    `json:"n"`
	Seed       int64  `json:"seed"`
	Engine     string `json:"engine"`
	Gomaxprocs int    `json:"gomaxprocs"`
	Shards     int    `json:"shards"`
	StepBatch  int    `json:"step_batch"`

	Rounds   int     `json:"rounds"`
	WallMS   float64 `json:"wall_ms"`
	Speedup  float64 `json:"speedup"`
	Checksum string  `json:"checksum"`
}

func main() {
	graphKind := flag.String("graph", "grid", "graph: grid|path|cycle|tree|sparse|geometric")
	n := flag.Int("n", 1024, "number of nodes")
	procs := flag.String("procs", "1,2,4,8", "comma-separated GOMAXPROCS sweep")
	seed := flag.Int64("seed", 1, "run seed")
	out := flag.String("out", "BENCH_multicore.json", "output JSON path")
	flag.Parse()

	if err := run(*graphKind, *n, *procs, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchmulti: %v\n", err)
		os.Exit(1)
	}
}

// buildGraph constructs the sweep's instance; every row reuses the same
// graph value, so the instance is identical by construction and only the
// engine's parallel grain varies.
func buildGraph(kind string, n int, seed int64) (*hybrid.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return hybrid.GridGraph(side, side), nil
	case "path":
		return hybrid.PathGraph(n), nil
	case "cycle":
		return hybrid.CycleGraph(n), nil
	case "tree":
		return hybrid.RandomTreeGraph(n, rng), nil
	case "sparse":
		return hybrid.SparseGraph(n, 1.2, rng), nil
	case "geometric":
		return hybrid.GeometricGraph(n, 0.15, rng), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

// run executes the sweep and writes the row array to out. GOMAXPROCS is
// set per row and restored to the entry value before returning.
func run(graphKind string, n int, procsList string, seed int64, out string) error {
	var procs []int
	for _, f := range strings.Split(procsList, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return fmt.Errorf("bad -procs entry %q", f)
		}
		procs = append(procs, p)
	}
	if len(procs) == 0 {
		return fmt.Errorf("-procs is empty")
	}

	g, err := buildGraph(graphKind, n, seed)
	if err != nil {
		return err
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var rows []report
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		net := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(hybrid.EngineStep),
			hybrid.WithShards(0), hybrid.WithStepBatch(-1))
		start := time.Now()
		res, err := net.APSP()
		if err != nil {
			return fmt.Errorf("gomaxprocs=%d: %w", p, err)
		}
		wall := time.Since(start)

		row := report{
			Graph:      graphKind,
			N:          g.N(),
			Seed:       seed,
			Engine:     "step",
			Gomaxprocs: p,
			Shards:     0,
			StepBatch:  -1,
			Rounds:     res.Metrics.Rounds,
			WallMS:     float64(wall.Microseconds()) / 1000,
			Checksum:   checksum(res.Dist),
		}
		rows = append(rows, row)
	}

	// Cross-row self-verification: the parallel grain must not change the
	// answer (or the round count).
	for _, row := range rows[1:] {
		if row.Checksum != rows[0].Checksum {
			return fmt.Errorf("gomaxprocs=%d: distance checksum %s differs from gomaxprocs=%d's %s",
				row.Gomaxprocs, row.Checksum, rows[0].Gomaxprocs, rows[0].Checksum)
		}
		if row.Rounds != rows[0].Rounds {
			return fmt.Errorf("gomaxprocs=%d: %d rounds differ from gomaxprocs=%d's %d",
				row.Gomaxprocs, row.Rounds, rows[0].Gomaxprocs, rows[0].Rounds)
		}
	}
	for i := range rows {
		rows[i].Speedup = rows[0].WallMS / rows[i].WallMS
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s", data)
	return nil
}

// checksum is an FNV-1a digest of the dense distance matrix, used to
// compare rows without holding every matrix in memory.
func checksum(dist [][]int64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, row := range dist {
		for _, d := range row {
			binary.LittleEndian.PutUint64(buf[:], uint64(d))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
