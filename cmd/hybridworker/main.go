// hybridworker runs one distributed-engine worker process by hand: it
// dials a coordinator (see internal/dist), announces the shard it serves,
// and serves staged rounds until the coordinator shuts it down.
//
// EngineDist does not normally need this binary — coordinators re-exec
// themselves as workers — but a standalone worker is the deployment shape
// for crossing machine boundaries (start hybridworker processes pointing
// at a TCP coordinator address) and is handy for debugging the protocol.
//
//	hybridworker -addr unix:/tmp/coord.sock -shard 0
//	hybridworker -addr tcp:10.0.0.7:4242 -shard 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dist"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("hybridworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "coordinator address with transport prefix (unix:/path or tcp:host:port)")
	shard := fs.Int("shard", -1, "shard id this worker serves (>= 0)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" || *shard < 0 {
		fmt.Fprintln(stderr, "hybridworker: -addr and -shard are required")
		fs.Usage()
		return 2
	}
	if err := dist.RunWorker(*addr, *shard); err != nil {
		fmt.Fprintf(stderr, "hybridworker: %v\n", err)
		return 1
	}
	return 0
}
