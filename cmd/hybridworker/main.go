// hybridworker runs one distributed-engine worker process by hand, in
// either of EngineDist's two topologies (see internal/dist):
//
// Dial mode (-addr) is the spawn-mode shape: the worker dials a running
// coordinator, announces the shard it serves, and serves staged rounds
// until the coordinator shuts it down.
//
// Listen mode (-listen) is the connect-mode shape: the worker binds a
// socket, prints the dialable address as "HYBRID_DIST_LISTENING <addr>"
// on stdout, and accepts coordinators one after another until killed —
// this is what runs on remote machines, with the coordinator started
// later under WithDistConnect / -dist-connect pointing at it. -shard is
// optional here: an unpinned worker serves whichever shard slot the
// coordinator dialed it for.
//
// EngineDist does not normally need this binary — coordinators re-exec
// themselves as workers — but a standalone worker is the deployment
// shape for crossing machine boundaries and is handy for debugging the
// protocol.
//
//	hybridworker -addr unix:/tmp/coord.sock -shard 0
//	hybridworker -addr tcp:10.0.0.7:4242 -shard 3
//	hybridworker -listen tcp::9000
//	hybridworker -listen tcp:10.0.0.7:9000 -shard 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dist"
	"repro/internal/dist/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hybridworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "coordinator address with transport prefix (unix:/path or tcp:host:port)")
	listen := fs.String("listen", "", "listen spec with transport prefix (tcp::9000, tcp:host:port, unix:/path); accepts coordinators instead of dialing one")
	shard := fs.Int("shard", -1, "shard id this worker serves (>= 0; optional with -listen)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *addr != "" && *listen != "":
		fmt.Fprintln(stderr, "hybridworker: -addr and -listen are mutually exclusive")
		fs.Usage()
		return 2
	case *listen != "":
		sh := *shard
		if sh < 0 {
			sh = wire.AnyShard
		}
		lw, err := dist.StartListenWorker(*listen, sh)
		if err != nil {
			fmt.Fprintf(stderr, "hybridworker: %v\n", err)
			return 1
		}
		// A resident listener is what runs on remote machines, so it gets
		// the daemon contract: SIGTERM/SIGINT close the listener and Serve
		// returns nil — exit 0, not a kill.
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
		defer signal.Stop(sigCh)
		go func() {
			if sig, ok := <-sigCh; ok {
				fmt.Fprintf(stderr, "hybridworker: %v: shutting down\n", sig)
				lw.Close()
			}
		}()
		fmt.Fprintf(stdout, "HYBRID_DIST_LISTENING %s\n", lw.Addr())
		if err := lw.Serve(); err != nil {
			fmt.Fprintf(stderr, "hybridworker: %v\n", err)
			return 1
		}
		return 0
	case *addr == "" || *shard < 0:
		fmt.Fprintln(stderr, "hybridworker: -addr and -shard are required (or use -listen)")
		fs.Usage()
		return 2
	}
	if err := dist.RunWorker(*addr, *shard); err != nil {
		fmt.Fprintf(stderr, "hybridworker: %v\n", err)
		return 1
	}
	return 0
}
