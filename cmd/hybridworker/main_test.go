package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/dist/wire"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{},                                   // no addr
		{"-addr", "unix:/x"},                 // no shard
		{"-shard", "0"},                      // no addr
		{"-addr", "unix:/x", "-shard", "-2"}, // negative shard
		{"-bogus"},                           // unknown flag
		{"-addr", "unix:/x", "-listen", "tcp::0", "-shard", "0"}, // both modes
	}
	for _, args := range cases {
		var out, sb strings.Builder
		if code := run(args, &out, &sb); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr: %s)", args, code, sb.String())
		}
	}
}

func TestRunDialFailure(t *testing.T) {
	var out, sb strings.Builder
	if code := run([]string{"-addr", "unix:/nonexistent/coord.sock", "-shard", "0"}, &out, &sb); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(sb.String(), "hybridworker:") {
		t.Fatalf("stderr = %q", sb.String())
	}
}

func TestRunListenBadSpec(t *testing.T) {
	var out, sb strings.Builder
	if code := run([]string{"-listen", "bogus-no-prefix"}, &out, &sb); code != 1 {
		t.Fatalf("run = %d, want 1 (stderr: %s)", code, sb.String())
	}
	if !strings.Contains(sb.String(), "transport prefix") {
		t.Fatalf("stderr = %q", sb.String())
	}
}

// TestRunServesUntilShutdown drives the real binary entrypoint against an
// in-test coordinator socket: the worker joins, answers a ping, and exits
// 0 on Shutdown.
func TestRunServesUntilShutdown(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "unix:" + sock, "-shard", "2"}, os.Stdout, os.Stderr)
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	join, err := wire.ReadFrame(conn)
	if err != nil || join.Type != wire.FrameJoin || join.Shard != 2 {
		t.Fatalf("join frame = %+v, %v", join, err)
	}
	hs, err := wire.DecodeHandshake(join.Payload)
	if err != nil || hs.Min != wire.ProtoMin || hs.Max != wire.ProtoMax || hs.Shard != 2 {
		t.Fatalf("join handshake = %+v, %v", hs, err)
	}
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameHeartbeat, Shard: 2})); err != nil {
		t.Fatal(err)
	}
	if pong, err := wire.ReadFrame(conn); err != nil || pong.Type != wire.FrameHeartbeat {
		t.Fatalf("ping answered with %+v, %v", pong, err)
	}
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameShutdown, Shard: 2})); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("worker exited %d, want 0", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit after shutdown")
	}
}

// TestRunListenMode starts the binary entrypoint in listen mode, dials it
// as a coordinator would, and checks the Join announcement (unpinned
// worker => AnyShard) plus a ping round trip over the served connection.
func TestRunListenMode(t *testing.T) {
	out := make(chan string, 1)
	pr, pw := newPipeWriter(out)
	defer pr.Close()
	go run([]string{"-listen", "tcp:127.0.0.1:0"}, pw, os.Stderr)

	var addr string
	select {
	case line := <-out:
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[0] != "HYBRID_DIST_LISTENING" {
			t.Fatalf("announcement line = %q", line)
		}
		addr = fields[1]
	case <-time.After(5 * time.Second):
		t.Fatal("no listening announcement")
	}

	conn, err := net.DialTimeout("tcp", strings.TrimPrefix(addr, "tcp:"), 5*time.Second)
	if err != nil {
		t.Fatalf("dialing announced address %s: %v", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	join, err := wire.ReadFrame(conn)
	if err != nil || join.Type != wire.FrameJoin {
		t.Fatalf("join frame = %+v, %v", join, err)
	}
	hs, err := wire.DecodeHandshake(join.Payload)
	if err != nil || hs.Shard != wire.AnyShard || hs.Max != wire.ProtoMax {
		t.Fatalf("join handshake = %+v, %v", hs, err)
	}
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameHeartbeat})); err != nil {
		t.Fatal(err)
	}
	if pong, err := wire.ReadFrame(conn); err != nil || pong.Type != wire.FrameHeartbeat {
		t.Fatalf("ping answered with %+v, %v", pong, err)
	}
	// Dropping the connection must not kill the worker: it goes back to
	// accepting, so a second coordinator can attach.
	conn.Close()
	conn2, err := net.DialTimeout("tcp", strings.TrimPrefix(addr, "tcp:"), 5*time.Second)
	if err != nil {
		t.Fatalf("re-dial after drop: %v", err)
	}
	defer conn2.Close()
	conn2.SetDeadline(time.Now().Add(5 * time.Second))
	if join2, err := wire.ReadFrame(conn2); err != nil || join2.Type != wire.FrameJoin {
		t.Fatalf("second join frame = %+v, %v", join2, err)
	}
}

// TestRunListenSIGTERM checks the daemon contract: a listen-mode worker
// hit with SIGTERM closes its listener and exits 0, not via kill.
func TestRunListenSIGTERM(t *testing.T) {
	out := make(chan string, 1)
	pr, pw := newPipeWriter(out)
	defer pr.Close()
	var sb syncBuilder
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-listen", "tcp:127.0.0.1:0"}, pw, &sb)
	}()

	select {
	case line := <-out:
		if !strings.HasPrefix(line, "HYBRID_DIST_LISTENING ") {
			t.Fatalf("announcement line = %q", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no listening announcement")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("worker exited %d, want 0 (stderr: %s)", code, sb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after SIGTERM")
	}
	if !strings.Contains(sb.String(), "shutting down") {
		t.Fatalf("stderr = %q, want shutdown notice", sb.String())
	}
}

// syncBuilder is a mutex-guarded strings.Builder safe to share between the
// worker goroutine and the test's assertions.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newPipeWriter returns a pipe whose first line is delivered on lines.
func newPipeWriter(lines chan<- string) (*os.File, *os.File) {
	pr, pw, err := os.Pipe()
	if err != nil {
		panic(err)
	}
	go func() {
		buf := make([]byte, 256)
		n, _ := pr.Read(buf)
		lines <- strings.TrimSpace(string(buf[:n]))
	}()
	return pr, pw
}
