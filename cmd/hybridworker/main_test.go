package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dist/wire"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{},                                   // no addr
		{"-addr", "unix:/x"},                 // no shard
		{"-shard", "0"},                      // no addr
		{"-addr", "unix:/x", "-shard", "-2"}, // negative shard
		{"-bogus"},                           // unknown flag
	}
	for _, args := range cases {
		var sb strings.Builder
		if code := run(args, &sb); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr: %s)", args, code, sb.String())
		}
	}
}

func TestRunDialFailure(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{"-addr", "unix:/nonexistent/coord.sock", "-shard", "0"}, &sb); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(sb.String(), "hybridworker:") {
		t.Fatalf("stderr = %q", sb.String())
	}
}

// TestRunServesUntilShutdown drives the real binary entrypoint against an
// in-test coordinator socket: the worker joins, answers a ping, and exits
// 0 on Shutdown.
func TestRunServesUntilShutdown(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "unix:" + sock, "-shard", "2"}, os.Stderr)
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	join, err := wire.ReadFrame(conn)
	if err != nil || join.Type != wire.FrameJoin || join.Shard != 2 {
		t.Fatalf("join frame = %+v, %v", join, err)
	}
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameHeartbeat, Shard: 2})); err != nil {
		t.Fatal(err)
	}
	if pong, err := wire.ReadFrame(conn); err != nil || pong.Type != wire.FrameHeartbeat {
		t.Fatalf("ping answered with %+v, %v", pong, err)
	}
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameShutdown, Shard: 2})); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("worker exited %d, want 0", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit after shutdown")
	}
}
