// Command benchtables regenerates every experiment table of the
// reproduction (E1-E11, the per-experiment index in DESIGN.md) and prints
// them. Exit status 1 if any guarantee check failed.
//
// Usage:
//
//	benchtables [-quick] [-xl] [-seed N] [-only E3,E7] [-engine step]
//
// -xl extends the scaling tables (E3, E6) to n ∈ {1024, 4096} on the
// goroutine-free step engine; see the README for expected runtimes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced sweeps")
	xl := flag.Bool("xl", false, "extend the scaling tables (E3, E6) to n in {1024, 4096}; expect minutes per table (see README)")
	seed := flag.Int64("seed", 20200615, "root random seed")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default all)")
	ablations := flag.Bool("ablations", false, "also run the A1-A4 design-choice ablations")
	engine := flag.String("engine", "", "round engine: sharded (default) | step | legacy; -xl defaults to step")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick, XL: *xl}
	if *engine == "" && *xl {
		*engine = "step" // the goroutine-free engine is what makes XL affordable
	}
	switch *engine {
	case "", "sharded":
		cfg.Engine = sim.EngineSharded
	case "step":
		cfg.Engine = sim.EngineStep
	case "legacy":
		cfg.Engine = sim.EngineLegacy
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(2)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	runners := []struct {
		id string
		f  func(experiments.Config) experiments.Table
	}{
		{"E1", experiments.E1TokenRouting},
		{"E2", experiments.E2HelperSets},
		{"E3", experiments.E3APSP},
		{"E4", experiments.E4CliqueSim},
		{"E5", experiments.E5KSSP},
		{"E6", experiments.E6SSSP},
		{"E7", experiments.E7Diameter},
		{"E8", experiments.E8KSSPLowerBound},
		{"E9", experiments.E9DiameterLowerBound},
		{"E10", experiments.E10RecvLoad},
		{"E11", experiments.E11ModeComparison},
	}
	if *ablations || len(want) > 0 {
		runners = append(runners,
			struct {
				id string
				f  func(experiments.Config) experiments.Table
			}{"A1", experiments.A1HelperQBoost},
			struct {
				id string
				f  func(experiments.Config) experiments.Table
			}{"A2", experiments.A2GlobalSendFactor},
			struct {
				id string
				f  func(experiments.Config) experiments.Table
			}{"A3", experiments.A3SkeletonHFactor},
			struct {
				id string
				f  func(experiments.Config) experiments.Table
			}{"A4", experiments.A4HashIndependence},
		)
	}

	failed := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		if len(want) == 0 && !*ablations && strings.HasPrefix(r.id, "A") {
			continue
		}
		start := time.Now()
		table := r.f(cfg)
		fmt.Println(table.String())
		fmt.Printf("(%s finished in %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
		failed += len(table.Failures)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d guarantee check(s) FAILED\n", failed)
		os.Exit(1)
	}
}
