// Command hybridsim runs one HYBRID-model algorithm on one generated graph
// and prints the result summary and cost metrics — the quickest way to poke
// at the library from a shell.
//
// Usage examples:
//
//	hybridsim -graph grid -n 100 -algo apsp
//	hybridsim -graph path -n 200 -algo sssp -source 0
//	hybridsim -graph sparse -n 144 -algo diameter -variant cor53
//	hybridsim -graph geometric -n 150 -algo kssp -k 5 -variant cor46
//	hybridsim -graph grid -n 1024 -algo apsp -engine step -cache-dir .hybcache
//
// With -cache-dir the run warm-starts from (and re-saves) the persistent
// warm-start cache: a second invocation with the same graph, seed, and
// parameters skips routing session and skeleton construction entirely. A
// corrupt or incompatible cache file is rejected with a warning and the run
// proceeds cold. -timeout bounds the run's wall clock; -progress n prints a
// live round ticker to stderr every n rounds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	hybrid "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind flag parsing; factored from main so the
// CLI-level tests can drive it in-process (exit codes, output, cancelled
// runs) without building a binary.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hybridsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	graphKind := fs.String("graph", "grid", "graph: grid|path|cycle|tree|sparse|geometric|barbell")
	n := fs.Int("n", 100, "number of nodes")
	algo := fs.String("algo", "apsp", "algorithm: apsp|apsp-baseline|sssp|kssp|diameter")
	variant := fs.String("variant", "cor52", "variant for kssp (cor46|cor47|cor48|mm) / diameter (cor52|cor53|mm)")
	source := fs.Int("source", 0, "source node for sssp")
	k := fs.Int("k", 3, "number of sources for kssp")
	eps := fs.Float64("eps", 0.5, "epsilon for approximation variants")
	seed := fs.Int64("seed", 1, "random seed")
	maxW := fs.Int64("maxw", 1, "max edge weight (1 = unweighted)")
	engine := fs.String("engine", "sharded", "round engine: sharded|step|legacy|dist")
	workers := fs.Int("workers", 0, "dist engine worker-process count (0 = default)")
	distConnect := fs.String("dist-connect", "", "comma-separated pre-started worker addresses for the dist engine (connect mode, e.g. tcp:10.0.0.7:9000,tcp:10.0.0.8:9000)")
	distWindow := fs.Int("dist-window", 0, "dist engine round-pipelining window (0 = lockstep)")
	verify := fs.Bool("verify", true, "check results against sequential ground truth")
	cacheDir := fs.String("cache-dir", "", "directory for the persistent warm-start cache (load before the run, save after)")
	timeout := fs.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = no limit)")
	progress := fs.Int("progress", 0, "print a live round ticker to stderr every n rounds (0 = off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *eps <= 0 {
		// The spec constructors default ε themselves, but the mm variants
		// derive η = 1/ε here, so the defaulting must happen first.
		*eps = 0.5
	}

	fatalf := func(format string, a ...interface{}) int {
		fmt.Fprintf(stderr, format+"\n", a...)
		return 1
	}

	var eng hybrid.Engine
	switch *engine {
	case "sharded":
		eng = hybrid.EngineSharded
	case "step":
		eng = hybrid.EngineStep
	case "legacy":
		eng = hybrid.EngineLegacy
	case "dist":
		eng = hybrid.EngineDist
	default:
		return fatalf("unknown engine %q", *engine)
	}

	rng := rand.New(rand.NewSource(*seed))
	var g *hybrid.Graph
	switch *graphKind {
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = hybrid.GridGraph(side, side)
	case "path":
		g = hybrid.PathGraph(*n)
	case "cycle":
		g = hybrid.CycleGraph(*n)
	case "tree":
		g = hybrid.RandomTreeGraph(*n, rng)
	case "sparse":
		g = hybrid.SparseGraph(*n, 1.2, rng)
	case "geometric":
		g = hybrid.GeometricGraph(*n, 0.15, rng)
	case "barbell":
		g = hybrid.BarbellGraph(*n/3, *n/3)
	default:
		return fatalf("unknown graph kind %q", *graphKind)
	}
	if *maxW > 1 {
		g = hybrid.WithRandomWeights(g, *maxW, rng)
	}
	fmt.Fprintf(stdout, "graph: %s, n=%d, m=%d, hop diameter=%d, engine=%s\n",
		*graphKind, g.N(), g.M(), hybrid.HopDiameter(g), eng)

	opts := []hybrid.Option{hybrid.WithSeed(*seed), hybrid.WithEngine(eng)}
	if *workers > 0 {
		opts = append(opts, hybrid.WithWorkers(*workers))
	}
	if *distConnect != "" {
		if eng != hybrid.EngineDist {
			return fatalf("-dist-connect requires -engine dist")
		}
		opts = append(opts, hybrid.WithDistConnect(strings.Split(*distConnect, ",")...))
	}
	if *distWindow > 0 {
		if eng != hybrid.EngineDist {
			return fatalf("-dist-window requires -engine dist")
		}
		opts = append(opts, hybrid.WithDistWindow(*distWindow))
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts = append(opts, hybrid.WithContext(ctx))
	}
	if *progress > 0 {
		every := *progress
		opts = append(opts, hybrid.WithProgress(func(round int) {
			if round%every == 0 {
				fmt.Fprintf(stderr, "round %d\n", round)
			}
		}))
	}
	if *cacheDir != "" {
		opts = append(opts, hybrid.WithCacheDir(*cacheDir))
	}

	net := hybrid.New(g, opts...)
	var cacheStatus hybrid.CacheLoadStatus
	if *cacheDir != "" {
		status, err := net.LoadCache()
		cacheStatus = status
		switch {
		case err != nil:
			fmt.Fprintf(stderr, "warning: %v (starting cold)\n", err)
		case status.Seed:
			fmt.Fprintf(stderr, "warm start: loaded structural+seed sections from %s\n", *cacheDir)
		case status.Structural:
			fmt.Fprintf(stderr, "warm start: loaded structural section only (cross-seed) from %s\n", *cacheDir)
		}
	}

	check := func(err error) int {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return fatalf("run cancelled: %v", err)
		}
		return fatalf("%v", err)
	}

	switch *algo {
	case "apsp", "apsp-baseline":
		var res *hybrid.APSPResult
		var err error
		if *algo == "apsp" {
			res, err = net.APSP()
		} else {
			res, err = net.APSPBaseline()
		}
		if err != nil {
			return check(err)
		}
		if *verify {
			verifyAPSP(stdout, g, res)
		}
		printMetrics(stdout, res.Metrics)
	case "sssp":
		res, err := net.SSSP(*source)
		if err != nil {
			return check(err)
		}
		if *verify {
			want := hybrid.Dijkstra(g, *source)
			bad := 0
			for v := range res.Dist {
				if res.Dist[v] != want[v] {
					bad++
				}
			}
			fmt.Fprintf(stdout, "sssp from %d: %d/%d distances exact\n", *source, g.N()-bad, g.N())
		}
		printMetrics(stdout, res.Metrics)
	case "kssp":
		sources := make([]int, 0, *k)
		for len(sources) < *k {
			sources = append(sources, rng.Intn(g.N()))
		}
		specs := map[string]hybrid.KSSPSpec{
			"cor46": hybrid.Cor46(*eps), "cor47": hybrid.Cor47(*eps),
			"cor48": hybrid.Cor48(*eps), "mm": hybrid.KSSPRealMM(1 / *eps),
		}
		spec, ok := specs[*variant]
		if !ok {
			return fatalf("unknown kssp variant %q", *variant)
		}
		res, err := net.KSSP(sources, spec)
		if err != nil {
			return check(err)
		}
		fmt.Fprintf(stdout, "algorithm: %s — %s\n", res.Algorithm, res.Guarantee)
		if *verify {
			worst := 1.0
			for _, s := range sources {
				want := hybrid.Dijkstra(g, s)
				for u := 0; u < g.N(); u++ {
					if want[u] > 0 {
						if r := float64(res.Dist[u][s]) / float64(want[u]); r > worst {
							worst = r
						}
					}
				}
			}
			fmt.Fprintf(stdout, "kssp %s with k=%d: worst approximation ratio %.3f\n", *variant, *k, worst)
		}
		printMetrics(stdout, res.Metrics)
	case "diameter":
		specs := map[string]hybrid.DiameterSpec{
			"cor52": hybrid.DiamCor52(*eps), "cor53": hybrid.DiamCor53(*eps), "mm": hybrid.DiamRealMM(1 / *eps),
		}
		spec, ok := specs[*variant]
		if !ok {
			return fatalf("unknown diameter variant %q", *variant)
		}
		res, err := net.Diameter(spec)
		if err != nil {
			return check(err)
		}
		fmt.Fprintf(stdout, "algorithm: %s — %s\n", res.Algorithm, res.Guarantee)
		if *verify {
			d := hybrid.HopDiameter(g)
			fmt.Fprintf(stdout, "diameter %s: estimate %d, true %d, ratio %.3f\n", *variant, res.Estimate, d, float64(res.Estimate)/float64(d))
		} else {
			fmt.Fprintf(stdout, "diameter %s: estimate %d\n", *variant, res.Estimate)
		}
		printMetrics(stdout, res.Metrics)
	default:
		return fatalf("unknown algorithm %q", *algo)
	}

	if *cacheDir != "" {
		if err := net.SaveCache(); err != nil {
			// No summary on a failed save: the on-disk set may be stale or
			// half-written, and a healthy-looking report would lie.
			fmt.Fprintf(stderr, "warning: saving warm-start cache: %v\n", err)
		} else {
			fmt.Fprintf(stderr, "saved warm-start cache: %s + %s\n", net.StructCachePath(), net.CachePath())
			printCacheSummary(stdout, net, cacheStatus)
		}
	}
	return 0
}

// printCacheSummary reports the on-disk cache sections in the run summary:
// which sections this run warm-started from (structural = seed-independent
// cluster structures, seed = sessions + skeleton results) and each file's
// format version and size after the post-run save.
func printCacheSummary(w io.Writer, net *hybrid.Network, status hybrid.CacheLoadStatus) {
	verdict := func(hit bool) string {
		if hit {
			return "hit"
		}
		return "miss"
	}
	structural, seed := net.CacheFiles()
	fmt.Fprintf(w, "cache: structural=%s seed=%s\n", verdict(status.Structural), verdict(status.Seed))
	for _, f := range []struct {
		name string
		info hybrid.CacheFileInfo
	}{{"structural", structural}, {"seed", seed}} {
		if !f.info.Exists {
			fmt.Fprintf(w, "cache %s file: absent\n", f.name)
			continue
		}
		fmt.Fprintf(w, "cache %s file: %s format=v%d size=%d bytes\n",
			f.name, filepath.Base(f.info.Path), f.info.Version, f.info.Bytes)
	}
}

func verifyAPSP(w io.Writer, g *hybrid.Graph, res *hybrid.APSPResult) {
	want := hybrid.ExactAPSP(g)
	bad := 0
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if res.Dist[u][v] != want[u][v] {
				bad++
			}
		}
	}
	fmt.Fprintf(w, "apsp: %d/%d pair distances exact\n", g.N()*g.N()-bad, g.N()*g.N())
}

func printMetrics(w io.Writer, m hybrid.Metrics) {
	fmt.Fprintf(w, "rounds=%d globalMsgs=%d globalBits=%d localMsgs=%d localBits=%d maxSend=%d maxRecv=%d\n",
		m.Rounds, m.GlobalMsgs, m.GlobalBits, m.LocalMsgs, m.LocalBits, m.MaxGlobalSend, m.MaxGlobalRecv)
}
