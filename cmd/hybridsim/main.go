// Command hybridsim runs one HYBRID-model algorithm on one generated graph
// and prints the result summary and cost metrics — the quickest way to poke
// at the library from a shell.
//
// Usage examples:
//
//	hybridsim -graph grid -n 100 -algo apsp
//	hybridsim -graph path -n 200 -algo sssp -source 0
//	hybridsim -graph sparse -n 144 -algo diameter -variant cor53
//	hybridsim -graph geometric -n 150 -algo kssp -k 5 -variant cor46
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	hybrid "repro"
)

func main() {
	graphKind := flag.String("graph", "grid", "graph: grid|path|cycle|sparse|geometric|barbell")
	n := flag.Int("n", 100, "number of nodes")
	algo := flag.String("algo", "apsp", "algorithm: apsp|apsp-baseline|sssp|kssp|diameter")
	variant := flag.String("variant", "cor52", "variant for kssp (cor46|cor47|cor48|mm) / diameter (cor52|cor53|mm)")
	source := flag.Int("source", 0, "source node for sssp")
	k := flag.Int("k", 3, "number of sources for kssp")
	eps := flag.Float64("eps", 0.5, "epsilon for approximation variants")
	seed := flag.Int64("seed", 1, "random seed")
	maxW := flag.Int64("maxw", 1, "max edge weight (1 = unweighted)")
	engine := flag.String("engine", "sharded", "round engine: sharded|step|legacy")
	verify := flag.Bool("verify", true, "check results against sequential ground truth")
	flag.Parse()
	if *eps <= 0 {
		// The spec constructors default ε themselves, but the mm variants
		// derive η = 1/ε here, so the defaulting must happen first.
		*eps = 0.5
	}

	var eng hybrid.Engine
	switch *engine {
	case "sharded":
		eng = hybrid.EngineSharded
	case "step":
		eng = hybrid.EngineStep
	case "legacy":
		eng = hybrid.EngineLegacy
	default:
		fatalf("unknown engine %q", *engine)
	}

	rng := rand.New(rand.NewSource(*seed))
	var g *hybrid.Graph
	switch *graphKind {
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = hybrid.GridGraph(side, side)
	case "path":
		g = hybrid.PathGraph(*n)
	case "cycle":
		g = hybrid.CycleGraph(*n)
	case "sparse":
		g = hybrid.SparseGraph(*n, 1.2, rng)
	case "geometric":
		g = hybrid.GeometricGraph(*n, 0.15, rng)
	case "barbell":
		g = hybrid.BarbellGraph(*n/3, *n/3)
	default:
		fatalf("unknown graph kind %q", *graphKind)
	}
	if *maxW > 1 {
		g = hybrid.WithRandomWeights(g, *maxW, rng)
	}
	fmt.Printf("graph: %s, n=%d, m=%d, hop diameter=%d, engine=%s\n",
		*graphKind, g.N(), g.M(), hybrid.HopDiameter(g), eng)

	net := hybrid.New(g, hybrid.WithSeed(*seed), hybrid.WithEngine(eng))
	switch *algo {
	case "apsp", "apsp-baseline":
		var res *hybrid.APSPResult
		var err error
		if *algo == "apsp" {
			res, err = net.APSP()
		} else {
			res, err = net.APSPBaseline()
		}
		check(err)
		if *verify {
			verifyAPSP(g, res)
		}
		printMetrics(res.Metrics)
	case "sssp":
		res, err := net.SSSP(*source)
		check(err)
		if *verify {
			want := hybrid.Dijkstra(g, *source)
			bad := 0
			for v := range res.Dist {
				if res.Dist[v] != want[v] {
					bad++
				}
			}
			fmt.Printf("sssp from %d: %d/%d distances exact\n", *source, g.N()-bad, g.N())
		}
		printMetrics(res.Metrics)
	case "kssp":
		sources := make([]int, 0, *k)
		for len(sources) < *k {
			sources = append(sources, rng.Intn(g.N()))
		}
		specs := map[string]hybrid.KSSPSpec{
			"cor46": hybrid.Cor46(*eps), "cor47": hybrid.Cor47(*eps),
			"cor48": hybrid.Cor48(*eps), "mm": hybrid.KSSPRealMM(1 / *eps),
		}
		spec, ok := specs[*variant]
		if !ok {
			fatalf("unknown kssp variant %q", *variant)
		}
		res, err := net.KSSP(sources, spec)
		check(err)
		fmt.Printf("algorithm: %s — %s\n", res.Algorithm, res.Guarantee)
		if *verify {
			worst := 1.0
			for _, s := range sources {
				want := hybrid.Dijkstra(g, s)
				for u := 0; u < g.N(); u++ {
					if want[u] > 0 {
						if r := float64(res.Dist[u][s]) / float64(want[u]); r > worst {
							worst = r
						}
					}
				}
			}
			fmt.Printf("kssp %s with k=%d: worst approximation ratio %.3f\n", *variant, *k, worst)
		}
		printMetrics(res.Metrics)
	case "diameter":
		specs := map[string]hybrid.DiameterSpec{
			"cor52": hybrid.DiamCor52(*eps), "cor53": hybrid.DiamCor53(*eps), "mm": hybrid.DiamRealMM(1 / *eps),
		}
		spec, ok := specs[*variant]
		if !ok {
			fatalf("unknown diameter variant %q", *variant)
		}
		res, err := net.Diameter(spec)
		check(err)
		fmt.Printf("algorithm: %s — %s\n", res.Algorithm, res.Guarantee)
		if *verify {
			d := hybrid.HopDiameter(g)
			fmt.Printf("diameter %s: estimate %d, true %d, ratio %.3f\n", *variant, res.Estimate, d, float64(res.Estimate)/float64(d))
		} else {
			fmt.Printf("diameter %s: estimate %d\n", *variant, res.Estimate)
		}
		printMetrics(res.Metrics)
	default:
		fatalf("unknown algorithm %q", *algo)
	}
}

func verifyAPSP(g *hybrid.Graph, res *hybrid.APSPResult) {
	want := hybrid.ExactAPSP(g)
	bad := 0
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if res.Dist[u][v] != want[u][v] {
				bad++
			}
		}
	}
	fmt.Printf("apsp: %d/%d pair distances exact\n", g.N()*g.N()-bad, g.N()*g.N())
}

func printMetrics(m hybrid.Metrics) {
	fmt.Printf("rounds=%d globalMsgs=%d globalBits=%d localMsgs=%d localBits=%d maxSend=%d maxRecv=%d\n",
		m.Rounds, m.GlobalMsgs, m.GlobalBits, m.LocalMsgs, m.LocalBits, m.MaxGlobalSend, m.MaxGlobalRecv)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
