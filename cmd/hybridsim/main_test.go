// CLI-level tests: run() is driven in-process with captured output, so the
// exit codes and messages of the cancelled-run, warm-start, and
// corrupt-cache paths are pinned without building a binary.
package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dist"
)

// runCLI invokes run with captured stdout/stderr.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

var roundsRe = regexp.MustCompile(`(?m)^rounds=(\d+) `)

func roundsOf(t *testing.T, stdout string) int {
	t.Helper()
	m := roundsRe.FindStringSubmatch(stdout)
	if m == nil {
		t.Fatalf("no rounds= line in output:\n%s", stdout)
	}
	r, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatalf("rounds %q: %v", m[1], err)
	}
	return r
}

func TestRunHappyPath(t *testing.T) {
	code, stdout, stderr := runCLI("-graph", "grid", "-n", "49", "-algo", "apsp", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "apsp: 2401/2401 pair distances exact") {
		t.Errorf("missing exactness line:\n%s", stdout)
	}
	roundsOf(t, stdout)
}

// TestRunTimeoutCancels pins the cancelled-run exit path: a run bounded by
// an unmeetable -timeout must exit non-zero with a cancellation message,
// not hang and not report results.
func TestRunTimeoutCancels(t *testing.T) {
	code, stdout, stderr := runCLI("-graph", "grid", "-n", "1024", "-algo", "apsp",
		"-engine", "step", "-timeout", "30ms", "-verify=false")
	if code == 0 {
		t.Fatalf("cancelled run exited 0; stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "run cancelled") || !strings.Contains(stderr, "deadline") {
		t.Errorf("stderr does not report the cancellation:\n%s", stderr)
	}
	if strings.Contains(stdout, "rounds=") {
		t.Errorf("cancelled run printed metrics:\n%s", stdout)
	}
}

// TestRunProgressTicker pins the -progress round ticker: a bounded run must
// emit periodic round lines on stderr.
func TestRunProgressTicker(t *testing.T) {
	code, _, stderr := runCLI("-graph", "grid", "-n", "49", "-algo", "apsp",
		"-progress", "200", "-verify=false")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "round 200\n") {
		t.Errorf("no round ticker on stderr:\n%s", stderr)
	}
}

// TestRunWarmStartCLI runs the same instance twice against one -cache-dir:
// the second run must announce the warm start, report strictly fewer
// rounds, and still verify exactly.
func TestRunWarmStartCLI(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-graph", "grid", "-n", "100", "-algo", "apsp", "-seed", "3", "-cache-dir", dir}

	code, coldOut, coldErr := runCLI(args...)
	if code != 0 {
		t.Fatalf("cold exit %d, stderr:\n%s", code, coldErr)
	}
	if !strings.Contains(coldErr, "saved warm-start cache") {
		t.Errorf("cold run did not save the cache:\n%s", coldErr)
	}

	code, warmOut, warmErr := runCLI(args...)
	if code != 0 {
		t.Fatalf("warm exit %d, stderr:\n%s", code, warmErr)
	}
	if !strings.Contains(warmErr, "warm start: loaded structural+seed sections") {
		t.Errorf("warm run did not load the cache:\n%s", warmErr)
	}
	if !strings.Contains(warmOut, "apsp: 10000/10000 pair distances exact") {
		t.Errorf("warm run not exact:\n%s", warmOut)
	}
	coldRounds, warmRounds := roundsOf(t, coldOut), roundsOf(t, warmOut)
	if warmRounds >= coldRounds {
		t.Errorf("warm run did not reduce rounds: cold %d, warm %d", coldRounds, warmRounds)
	}

	// The run summary reports the cache sections: hit/miss per section and
	// each file's format version and size.
	if !strings.Contains(coldOut, "cache: structural=miss seed=miss") {
		t.Errorf("cold run summary missing section miss report:\n%s", coldOut)
	}
	if !strings.Contains(warmOut, "cache: structural=hit seed=hit") {
		t.Errorf("warm run summary missing section hit report:\n%s", warmOut)
	}
	for _, want := range []string{"cache structural file: warm-", "cache seed file: warm-", "format=v2 size="} {
		if !strings.Contains(warmOut, want) {
			t.Errorf("warm run summary missing %q:\n%s", want, warmOut)
		}
	}
}

// TestRunCrossSeedWarmStartCLI pins the seed-split behavior end to end: a
// run with a new seed against a cache directory populated under another
// seed loads the structural section only, lands strictly between that
// seed's cold and full-warm round counts, and still verifies exactly.
func TestRunCrossSeedWarmStartCLI(t *testing.T) {
	dir := t.TempDir()
	argsFor := func(seed string, cache bool) []string {
		args := []string{"-graph", "grid", "-n", "100", "-algo", "apsp", "-seed", seed}
		if cache {
			args = append(args, "-cache-dir", dir)
		}
		return args
	}

	// Cold baseline for seed 4 without any cache, then populate the cache
	// under seed 3.
	code, coldOut, coldErr := runCLI(argsFor("4", false)...)
	if code != 0 {
		t.Fatalf("cold exit %d, stderr:\n%s", code, coldErr)
	}
	if code, _, stderr := runCLI(argsFor("3", true)...); code != 0 {
		t.Fatalf("populate exit %d, stderr:\n%s", code, stderr)
	}

	code, crossOut, crossErr := runCLI(argsFor("4", true)...)
	if code != 0 {
		t.Fatalf("cross-seed exit %d, stderr:\n%s", code, crossErr)
	}
	if !strings.Contains(crossErr, "warm start: loaded structural section only (cross-seed)") {
		t.Errorf("cross-seed run did not announce the partial warm start:\n%s", crossErr)
	}
	if !strings.Contains(crossOut, "cache: structural=hit seed=miss") {
		t.Errorf("cross-seed summary missing section report:\n%s", crossOut)
	}
	if !strings.Contains(crossOut, "apsp: 10000/10000 pair distances exact") {
		t.Errorf("cross-seed run not exact:\n%s", crossOut)
	}

	// The cross-seed run saved its own seed section: the rerun is fully warm.
	code, warmOut, _ := runCLI(argsFor("4", true)...)
	if code != 0 {
		t.Fatalf("warm exit %d", code)
	}
	coldRounds, crossRounds, warmRounds := roundsOf(t, coldOut), roundsOf(t, crossOut), roundsOf(t, warmOut)
	if !(warmRounds < crossRounds && crossRounds < coldRounds) {
		t.Errorf("cross-seed rounds not strictly between: cold %d, cross-seed %d, warm %d",
			coldRounds, crossRounds, warmRounds)
	}
}

// TestRunCorruptCacheFallsBack corrupts the saved cache file in place: the
// rerun must warn, fall back to a cold start, still succeed, and overwrite
// the bad file with a fresh one that warms the next run.
func TestRunCorruptCacheFallsBack(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-graph", "grid", "-n", "100", "-algo", "apsp", "-seed", "3", "-cache-dir", dir}
	if code, _, stderr := runCLI(args...); code != 0 {
		t.Fatalf("cold exit %d, stderr:\n%s", code, stderr)
	}
	// v2 writes two section files: the seed-specific one and the shared
	// structural one. Corrupt the seed file; the whole set must be
	// rejected (no half-warm state).
	files, err := filepath.Glob(filepath.Join(dir, "*-seed*.hybc"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files: %v, %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runCLI(args...)
	if code != 0 {
		t.Fatalf("run after corruption exited %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "warning:") || !strings.Contains(stderr, "starting cold") {
		t.Errorf("no rejection warning on stderr:\n%s", stderr)
	}
	if !strings.Contains(stdout, "apsp: 10000/10000 pair distances exact") {
		t.Errorf("cold fallback not exact:\n%s", stdout)
	}
	// The run re-saved a good file set: the next invocation warm-starts
	// again, both sections.
	if _, _, stderr := runCLI(args...); !strings.Contains(stderr, "warm start: loaded structural+seed sections") {
		t.Errorf("cache was not repaired by the fallback run:\n%s", stderr)
	}
}

// TestRunBadFlags pins the error exits for unknown enum-ish flag values.
func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-engine", "warp"},
		{"-graph", "torus"},
		{"-algo", "mst"},
		{"-algo", "kssp", "-variant", "cor99"},
		{"-algo", "diameter", "-variant", "cor99"},
		{"-not-a-flag"},
		{"-dist-connect", "tcp:127.0.0.1:1"},     // requires -engine dist
		{"-dist-window", "4"},                    // requires -engine dist
		{"-engine", "step", "-dist-window", "2"}, // wrong engine
	} {
		if code, _, _ := runCLI(args...); code == 0 {
			t.Errorf("args %v exited 0", args)
		}
	}
}

// TestRunDistConnectCLI runs the full CLI in connect mode against
// pre-started in-process listen workers and checks the run verifies
// against ground truth like any other engine.
func TestRunDistConnectCLI(t *testing.T) {
	var addrs []string
	for k := 0; k < 2; k++ {
		lw, err := dist.StartListenWorker("tcp:127.0.0.1:0", k)
		if err != nil {
			t.Fatal(err)
		}
		defer lw.Close()
		go lw.Serve()
		addrs = append(addrs, lw.Addr())
	}
	code, stdout, stderr := runCLI("-graph", "path", "-n", "24", "-algo", "sssp", "-seed", "3",
		"-engine", "dist", "-dist-connect", strings.Join(addrs, ","), "-dist-window", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "24/24 distances exact") {
		t.Errorf("connect-mode sssp not exact:\n%s", stdout)
	}
}

// TestRunTreeGraph smokes the tree generator through the CLI (it feeds the
// randomized harness and is part of the documented -graph values).
func TestRunTreeGraph(t *testing.T) {
	code, stdout, stderr := runCLI("-graph", "tree", "-n", "40", "-algo", "sssp", "-seed", "5")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "sssp from 0: 40/40 distances exact") {
		t.Errorf("tree sssp not exact:\n%s", stdout)
	}
}
