package hybrid_test

import (
	"fmt"
	"log"

	hybrid "repro"
)

// Engines change wall-clock speed only: for a fixed seed, the goroutine
// engines and the goroutine-free step engine (fastest on large inputs)
// produce byte-identical results and Metrics. See ARCHITECTURE.md for the
// engine guide.
func ExampleWithEngine() {
	g := hybrid.GridGraph(6, 6)
	step, err := hybrid.New(g, hybrid.WithSeed(1), hybrid.WithEngine(hybrid.EngineStep)).APSP()
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := hybrid.New(g, hybrid.WithSeed(1), hybrid.WithEngine(hybrid.EngineSharded)).APSP()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("corner to corner:", step.Dist[0][35])
	fmt.Println("identical metrics:", step.Metrics == sharded.Metrics)
	// Output:
	// corner to corner: 10
	// identical metrics: true
}

// The headline result: exact all-pairs shortest paths in O~(sqrt n) HYBRID
// rounds (Theorem 1.1).
func ExampleNetwork_APSP() {
	g := hybrid.GridGraph(6, 6)
	net := hybrid.New(g, hybrid.WithSeed(1))
	res, err := net.APSP()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("corner to corner:", res.Dist[0][35])
	// Output: corner to corner: 10
}

// Exact single-source shortest paths in O~(n^(2/5)) rounds (Theorem 1.3).
func ExampleNetwork_SSSP() {
	g := hybrid.PathGraph(30)
	net := hybrid.New(g, hybrid.WithSeed(2))
	res, err := net.SSSP(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distance to far end:", res.Dist[29])
	// Output: distance to far end: 29
}

// Diameter approximation (Theorem 1.4): small diameters resolve exactly
// through the h-hat aggregation path of Equation (3).
func ExampleNetwork_Diameter() {
	g := hybrid.GridGraph(5, 5)
	net := hybrid.New(g, hybrid.WithSeed(3))
	res, err := net.Diameter(hybrid.DiamCor52(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("estimate:", res.Estimate)
	// Output: estimate: 8
}

// Approximate k-source shortest paths (Theorem 1.2): Corollary 4.6 gives a
// (1+ε)-approximation on unweighted graphs for up to n^(1/3) sources.
func ExampleNetwork_KSSP() {
	g := hybrid.GridGraph(6, 6)
	net := hybrid.New(g, hybrid.WithSeed(4))
	sources := []int{0, 35}
	res, err := net.KSSP(sources, hybrid.Cor46(0.5))
	if err != nil {
		log.Fatal(err)
	}
	// res.Dist[v][s] is node v's estimate of d(v, s).
	fmt.Println("node 35 to source 0:", res.Dist[35][0])
	fmt.Println("node 0 to source 35:", res.Dist[0][35])
	// Output:
	// node 35 to source 0: 10
	// node 0 to source 35: 10
}

// The token routing protocol of Theorem 2.2, exposed directly: every node
// ships one token to its successor on a cycle, in O~(K/n + sqrt(kS) +
// sqrt(kR)) rounds. Receivers know the labels they expect (the problem
// statement's convention) and get the payloads filled in.
func ExampleNetwork_TokenRouting() {
	g := hybrid.CycleGraph(8)
	n := g.N()
	specs := make([]hybrid.RoutingSpec, n)
	for v := 0; v < n; v++ {
		next := (v + 1) % n
		prev := (v - 1 + n) % n
		specs[v] = hybrid.RoutingSpec{
			Send:   []hybrid.RoutingToken{{Label: hybrid.RoutingLabel{S: v, R: next}, Value: int64(100 + v)}},
			Expect: []hybrid.RoutingLabel{{S: prev, R: v}},
			InS:    true, InR: true,
			KS: 1, KR: 1,
			PS: 1, PR: 1,
		}
	}
	net := hybrid.New(g, hybrid.WithSeed(5))
	got, _, err := net.TokenRouting(specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 0 received:", got[0][0].Value, "from", got[0][0].S)
	// Output: node 0 received: 107 from 7
}

// Forwarding tables from an APSP result — the paper's IP-routing
// motivation.
func ExampleNextHops() {
	g := hybrid.PathGraph(4)
	dist := hybrid.ExactAPSP(g)
	tables := hybrid.NextHops(g, dist)
	fmt.Println("node 0 toward node 3 via:", tables[0][3])
	fmt.Println("route:", hybrid.FollowRoute(tables, 0, 3))
	// Output:
	// node 0 toward node 3 via: 1
	// route: [0 1 2 3]
}

// The Figure 2 lower-bound family: the diameter of Γ encodes set
// disjointness (Lemma 7.2 dichotomy).
func ExampleGammaGraph() {
	// Disjoint instance (all-zero inputs insert every red edge).
	a := make([]bool, 4)
	b := make([]bool, 4)
	g, err := hybrid.GammaGraph(2, 3, 1, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("disjoint => D = l+1:", hybrid.HopDiameter(g))

	// Intersecting instance: index 0 set on both sides.
	a[0], b[0] = true, true
	g2, _ := hybrid.GammaGraph(2, 3, 1, a, b)
	fmt.Println("intersecting => D = l+2:", hybrid.HopDiameter(g2))
	// Output:
	// disjoint => D = l+1: 4
	// intersecting => D = l+2: 5
}
