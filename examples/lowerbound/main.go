// lowerbound walks through the Theorem 1.6 machinery: it builds the
// Figure 2 family Γ^{a,b} for set-disjointness instances, machine-checks
// the diameter dichotomy of Lemmas 7.1/7.2, runs a real HYBRID diameter
// algorithm on both a disjoint and an intersecting instance, and reports
// the global traffic crossing the Alice/Bob simulation cut — the
// information bottleneck behind the Ω~(n^(1/3)) bound.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/diameter"
	"repro/internal/lowerbound"
	"repro/internal/sim"
)

func main() {
	const k, l = 4, 6
	p := lowerbound.GammaParams{K: k, L: l, W: int64(l) + 1}
	rng := rand.New(rand.NewSource(3))

	fmt.Printf("Gamma family: k=%d (k^2 = %d disjointness bits), l=%d, W=%d, n=%d\n",
		k, p.Bits(), l, p.W, p.N())

	// Weighted dichotomy (Lemma 7.1) on random instances.
	for _, intersect := range []bool{false, true} {
		a, b := lowerbound.RandomInstance(p.Bits(), 0.3, intersect, rng)
		if err := lowerbound.VerifyLemma71(p, a, b); err != nil {
			log.Fatalf("Lemma 7.1 FAILED: %v", err)
		}
		gm, _ := lowerbound.BuildGamma(p, a, b)
		fmt.Printf("  DISJ=%v: weighted diameter dichotomy verified (thresholds %d vs %d)\n",
			!intersect, p.W+2*int64(l), 2*p.W+int64(l))
		_ = gm
	}
	// Unweighted dichotomy (Lemma 7.2).
	a, b := lowerbound.RandomInstance(p.Bits(), 0.3, false, rng)
	if err := lowerbound.VerifyLemma72(k, l, a, b); err != nil {
		log.Fatalf("Lemma 7.2 FAILED: %v", err)
	}
	fmt.Printf("  unweighted dichotomy verified: D = l+1 iff DISJ, else l+2\n\n")

	// Run the real (3/2+eps) diameter algorithm on an unweighted Γ and
	// count the global bits crossing the Alice/Bob column cut (Lemma 7.3's
	// simulation boundary).
	for _, intersect := range []bool{false, true} {
		ai, bi := lowerbound.RandomInstance(p.Bits(), 0.3, intersect, rng)
		gm, err := lowerbound.BuildGamma(lowerbound.GammaParams{K: k, L: l, W: 1}, ai, bi)
		if err != nil {
			log.Fatal(err)
		}
		est := make([]int64, gm.G.N())
		m, err := sim.Run(gm.G, sim.Config{Seed: 5, Cut: gm.AliceCut()}, func(env *sim.Env) {
			est[env.ID()] = diameter.Compute(env, diameter.Corollary52(0.5, 0), diameter.Params{})
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DISJ=%v: algorithm's estimate %d (true %d or %d), %d rounds, %d global bits crossed the cut\n",
			!intersect, est[0], l+1, l+2, m.Rounds, m.CutGlobalBits)
	}
	fmt.Printf("\nany algorithm distinguishing the two cases solves DISJ over %d bits;\n", p.Bits())
	fmt.Printf("scaled up (Theorem 1.6), that forces Omega((n/log^2 n)^(1/3)) rounds = %.1f at n = 10^6\n",
		lowerbound.DiameterRoundLB(1_000_000))
}
