// iprouting demonstrates the paper's motivating application (§1): a network
// of wireless devices with short-range local links (the local graph) plus
// cellular connectivity (the global mode) learns the topology of its local
// network to build IP routing tables.
//
// Every node ends up with a next-hop table for every destination, derived
// from the exact APSP of Theorem 1.1.
package main

import (
	"fmt"
	"log"
	"math/rand"

	hybrid "repro"
)

func main() {
	// 120 devices scattered in the unit square; devices within radio range
	// share a local link — the paper's device-to-device scenario.
	rng := rand.New(rand.NewSource(7))
	g := hybrid.GeometricGraph(120, 0.17, rng)
	fmt.Printf("wireless mesh: n=%d, links=%d, hop diameter=%d\n", g.N(), g.M(), hybrid.HopDiameter(g))

	net := hybrid.New(g, hybrid.WithSeed(7))
	res, err := net.APSP()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology learned in %d HYBRID rounds (%d global messages, peak receive load %d)\n",
		res.Metrics.Rounds, res.Metrics.GlobalMsgs, res.Metrics.MaxGlobalRecv)

	// Forwarding tables for every node, from the exact distances.
	tables := res.NextHops(g)
	fmt.Println("node 0 routing table (first 10 destinations):")
	for t := 1; t <= 10; t++ {
		fmt.Printf("  dest %3d: next hop %3d, distance %d\n", t, tables[0][t], res.Dist[0][t])
	}

	// Sanity: following next hops always reaches the destination along a
	// shortest path.
	checked := 0
	for s := 0; s < g.N(); s += 7 {
		for t := 0; t < g.N(); t += 11 {
			if s == t {
				continue
			}
			path := hybrid.FollowRoute(tables, s, t)
			if path == nil || int64(len(path)-1) > res.Dist[s][t] {
				log.Fatalf("routing failure from %d to %d", s, t)
			}
			var w int64
			for i := 1; i < len(path); i++ {
				ew, _ := g.Weight(path[i-1], path[i])
				w += ew
			}
			if w != res.Dist[s][t] {
				log.Fatalf("route %d->%d is a detour", s, t)
			}
			checked++
		}
	}
	fmt.Printf("verified %d forwarding paths: all loop-free shortest routes\n", checked)
}
