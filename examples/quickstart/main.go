// Quickstart: build a small local communication graph, run the paper's
// headline algorithm (Theorem 1.1 exact APSP in O~(sqrt n) HYBRID rounds),
// and inspect the result and its cost.
package main

import (
	"fmt"
	"log"

	hybrid "repro"
)

func main() {
	// The local communication graph G: a 8x8 grid (hop diameter 14).
	g := hybrid.GridGraph(8, 8)

	// A HYBRID network over G: LOCAL mode on the grid edges plus the
	// O(log n)-messages-per-round global mode.
	net := hybrid.New(g, hybrid.WithSeed(42))

	// Exact all-pairs shortest paths (Theorem 1.1).
	res, err := net.APSP()
	if err != nil {
		log.Fatal(err)
	}

	// Every node now knows its distance to every other node.
	fmt.Printf("d(corner, opposite corner) = %d (want 14)\n", res.Dist[0][63])
	fmt.Printf("d(corner, center)          = %d\n", res.Dist[0][27])

	// Verify against sequential Dijkstra.
	want := hybrid.ExactAPSP(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if res.Dist[u][v] != want[u][v] {
				log.Fatalf("mismatch at (%d,%d)", u, v)
			}
		}
	}
	fmt.Println("all 64x64 distances exact")

	// The cost the paper's theorems are about:
	m := res.Metrics
	fmt.Printf("HYBRID rounds: %d  (pure-LOCAL flooding would need >= D = 14, but with n^2 messages;\n", m.Rounds)
	fmt.Printf("global messages: %d, max per-round receive load: %d = O(log n))\n", m.GlobalMsgs, m.MaxGlobalRecv)
}
