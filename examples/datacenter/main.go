// datacenter demonstrates the paper's second motivating scenario (§1):
// a datacenter whose wired rack-level fabric (local graph: clusters of
// servers bridged by a spine) is augmented with a flexible low-bandwidth
// global mode (free-space optical / wireless, per Helios and Flyways).
//
// The operators watch the fabric's diameter — a proxy for worst-case
// latency — using the (3/2+ε) and (1+ε) estimators of Theorem 1.4, and
// localize slowdowns with the exact SSSP of Theorem 1.3 from a monitor
// node, all in rounds sublinear in n.
package main

import (
	"fmt"
	"log"

	hybrid "repro"
)

// buildFabric creates `racks` cliques of `perRack` servers, chained by
// top-of-rack uplinks — a deliberately elongated fabric so the diameter is
// interesting.
func buildFabric(racks, perRack int) *hybrid.Graph {
	g := hybrid.NewGraph(racks * perRack)
	id := func(r, s int) int { return r*perRack + s }
	for r := 0; r < racks; r++ {
		for a := 0; a < perRack; a++ {
			for b := a + 1; b < perRack; b++ {
				g.MustAddEdge(id(r, a), id(r, b), 1)
			}
		}
		if r+1 < racks {
			g.MustAddEdge(id(r, 0), id(r+1, 0), 1) // ToR uplink chain
		}
	}
	return g
}

func main() {
	g := buildFabric(12, 8)
	d := hybrid.HopDiameter(g)
	fmt.Printf("fabric: %d servers in 12 racks, hop diameter %d\n", g.N(), d)

	for _, v := range []struct {
		name string
		spec hybrid.DiameterSpec
	}{
		{"(3/2+eps) estimator (Cor 5.2)", hybrid.DiamCor52(0.25)},
		{"(1+eps) estimator   (Cor 5.3)", hybrid.DiamCor53(0.25)},
	} {
		net := hybrid.New(g, hybrid.WithSeed(11))
		res, err := net.Diameter(v.spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: D~ = %d (true %d, ratio %.2f) in %d rounds\n",
			v.name, res.Estimate, d, float64(res.Estimate)/float64(d), res.Metrics.Rounds)
	}

	// A monitor in rack 0 measures exact distances to every server
	// (Theorem 1.3), e.g. to locate which rack a latency regression is in.
	net := hybrid.New(g, hybrid.WithSeed(12))
	mon, err := net.SSSP(0)
	if err != nil {
		log.Fatal(err)
	}
	want := hybrid.Dijkstra(g, 0)
	for v := range mon.Dist {
		if mon.Dist[v] != want[v] {
			log.Fatalf("monitor distance to %d wrong", v)
		}
	}
	var worst int64
	worstRack := 0
	for r := 0; r < 12; r++ {
		if dd := mon.Dist[r*8]; dd > worst {
			worst, worstRack = dd, r
		}
	}
	fmt.Printf("monitor SSSP exact for all %d servers in %d rounds; farthest rack: %d at distance %d\n",
		g.N(), mon.Metrics.Rounds, worstRack, worst)
}
