package hybrid

import (
	"strings"
	"testing"
)

// TestUniformEstimateDetectsDisagreement exercises the diameter-agreement
// check directly: the collective protocols end with an announced common
// value, and a divergent node must surface as an error naming it, not be
// papered over by returning node 0's answer.
func TestUniformEstimateDetectsDisagreement(t *testing.T) {
	if got, err := uniformEstimate([]int64{4, 4, 4}, "diameter"); err != nil || got != 4 {
		t.Fatalf("agreeing vector: got (%d, %v)", got, err)
	}
	_, err := uniformEstimate([]int64{4, 4, 9, 4}, "diameter")
	if err == nil {
		t.Fatal("disagreeing vector accepted")
	}
	if !strings.Contains(err.Error(), "node 2") || !strings.Contains(err.Error(), "diameter") {
		t.Errorf("error %q does not identify the disagreeing node and quantity", err)
	}
	if got, err := uniformEstimate(nil, "diameter"); err != nil || got != 0 {
		t.Fatalf("empty vector: got (%d, %v)", got, err)
	}
}
