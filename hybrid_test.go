package hybrid_test

import (
	"math/rand"
	"testing"

	hybrid "repro"
	"repro/internal/routing"
)

func TestFacadeAPSP(t *testing.T) {
	g := hybrid.GridGraph(7, 7)
	net := hybrid.New(g, hybrid.WithSeed(1))
	res, err := net.APSP()
	if err != nil {
		t.Fatal(err)
	}
	want := hybrid.ExactAPSP(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if res.Dist[u][v] != want[u][v] {
				t.Fatalf("d(%d,%d) = %d, want %d", u, v, res.Dist[u][v], want[u][v])
			}
		}
	}
	if res.Metrics.Rounds == 0 {
		t.Fatal("metrics missing")
	}
}

func TestFacadeAPSPBaselineAndLocal(t *testing.T) {
	g := hybrid.CycleGraph(40)
	net := hybrid.New(g, hybrid.WithSeed(2))
	want := hybrid.ExactAPSP(g)

	base, err := net.APSPBaseline()
	if err != nil {
		t.Fatal(err)
	}
	local, err := net.APSPLocalOnly(int(hybrid.HopDiameter(g)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if base.Dist[u][v] != want[u][v] {
				t.Fatalf("baseline d(%d,%d) wrong", u, v)
			}
			if local.Dist[u][v] != want[u][v] {
				t.Fatalf("local d(%d,%d) wrong", u, v)
			}
		}
	}
}

func TestFacadeSSSP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := hybrid.WithRandomWeights(hybrid.GridGraph(6, 7), 9, rng)
	net := hybrid.New(g, hybrid.WithSeed(3))
	res, err := net.SSSP(11)
	if err != nil {
		t.Fatal(err)
	}
	want := hybrid.Dijkstra(g, 11)
	for v := 0; v < g.N(); v++ {
		if res.Dist[v] != want[v] {
			t.Fatalf("SSSP d(%d) = %d, want %d", v, res.Dist[v], want[v])
		}
	}
}

func TestFacadeSSSPBadSource(t *testing.T) {
	net := hybrid.New(hybrid.PathGraph(5))
	if _, err := net.SSSP(99); err == nil {
		t.Fatal("expected error for out-of-range source")
	}
}

func TestFacadeKSSPVariants(t *testing.T) {
	g := hybrid.GridGraph(7, 7)
	sources := []int{0, 24, 48}
	for _, spec := range []hybrid.KSSPSpec{hybrid.Cor46(0.5), hybrid.Cor47(0.5), hybrid.Cor48(0.5)} {
		net := hybrid.New(g, hybrid.WithSeed(4))
		res, err := net.KSSP(sources, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if res.Algorithm != spec.Name() || res.Guarantee == "" {
			t.Fatalf("%s: result not tagged with spec name/guarantee", spec.Name())
		}
		for _, s := range sources {
			want := hybrid.Dijkstra(g, s)
			for v := 0; v < g.N(); v++ {
				dt := res.Dist[v][s]
				if dt < want[v] || dt > 8*want[v]+8 {
					t.Fatalf("%s: d~(%d,%d) = %d vs true %d", spec.Name(), v, s, dt, want[v])
				}
			}
		}
	}
}

func TestFacadeKSSPUnknownVariant(t *testing.T) {
	net := hybrid.New(hybrid.PathGraph(4))
	if _, err := net.KSSPByVariant([]int{0}, hybrid.KSSPVariant(99), 0.5); err == nil {
		t.Fatal("expected error for unknown variant")
	}
	if _, err := net.KSSP([]int{0}, hybrid.KSSPSpec{}); err == nil {
		t.Fatal("expected error for zero-value spec")
	}
}

func TestFacadeDiameter(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	d := hybrid.HopDiameter(g)
	for _, spec := range []hybrid.DiameterSpec{hybrid.DiamCor52(0.5), hybrid.DiamCor53(0.5)} {
		net := hybrid.New(g, hybrid.WithSeed(5))
		res, err := net.Diameter(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if res.Estimate < d || res.Estimate > 3*d {
			t.Fatalf("%s: estimate %d vs true %d", spec.Name(), res.Estimate, d)
		}
		if res.Algorithm != spec.Name() || res.Guarantee == "" {
			t.Fatalf("%s: result not tagged with spec name/guarantee", spec.Name())
		}
	}
}

func TestFacadeTokenRouting(t *testing.T) {
	g := hybrid.GridGraph(5, 5)
	n := g.N()
	specs := make([]routing.Spec, n)
	tok := routing.Token{Label: routing.Label{S: 2, R: 22, I: 0}, Value: 77}
	specs[2].Send = []routing.Token{tok}
	specs[2].InS = true
	specs[22].Expect = []routing.Label{tok.Label}
	specs[22].InR = true
	for v := range specs {
		specs[v].KS, specs[v].KR = 1, 1
		specs[v].PS, specs[v].PR = 0.1, 0.1
	}
	net := hybrid.New(g, hybrid.WithSeed(6))
	got, m, err := net.TokenRouting(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[22]) != 1 || got[22][0].Value != 77 {
		t.Fatalf("receiver got %v", got[22])
	}
	if m.Rounds == 0 {
		t.Fatal("metrics missing")
	}
}

func TestFacadeGammaGraph(t *testing.T) {
	a := make([]bool, 4)
	b := make([]bool, 4)
	g, err := hybrid.GammaGraph(2, 3, 9, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint instance: weighted diameter <= W+2l = 15 (Lemma 7.1).
	if d := hybrid.WeightedDiameter(g); d > 15 {
		t.Fatalf("disjoint Gamma diameter %d > 15", d)
	}
}

func TestFacadeCutOption(t *testing.T) {
	g := hybrid.PathGraph(8)
	cut := make([]bool, 8)
	for i := 0; i < 4; i++ {
		cut[i] = true
	}
	net := hybrid.New(g, hybrid.WithSeed(7), hybrid.WithCut(cut))
	res, err := net.APSP()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CutGlobalMsgs == 0 {
		t.Fatal("cut accounting produced zero crossings for APSP on a split path")
	}
}

func TestFacadeWeightedDiameterApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := hybrid.WithRandomWeights(hybrid.GridGraph(6, 6), 7, rng)
	net := hybrid.New(g, hybrid.WithSeed(11))
	res, err := net.WeightedDiameterApprox()
	if err != nil {
		t.Fatal(err)
	}
	d := hybrid.WeightedDiameter(g)
	if res.Estimate < d || res.Estimate > 2*d {
		t.Fatalf("estimate %d outside [D, 2D] = [%d, %d]", res.Estimate, d, 2*d)
	}
}
