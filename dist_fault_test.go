// Facade-level fault-injection tests for the distributed engine: a worker
// killed mid-run must be respawned and replayed to a byte-identical result,
// and injected frame drops must be absorbed by the retry path. Both are
// exercised end to end — real worker OS processes, real unix sockets —
// against the legacy engine as the correctness oracle.
package hybrid_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	hybrid "repro"
	"repro/internal/dist"
)

// TestDistWorkerKillReplay kills one worker process at a drawn round in the
// middle of an APSP run. The coordinator must respawn it, replay the round,
// and finish with distances and metrics byte-identical to both a clean
// EngineDist run and the legacy oracle.
func TestDistWorkerKillReplay(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	rng := rand.New(rand.NewSource(1))
	killRound := 10 + rng.Intn(20)

	oracle, err := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithEngine(hybrid.EngineLegacy)).APSP()
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}
	clean, err := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithEngine(hybrid.EngineDist),
		hybrid.WithWorkers(2)).APSP()
	if err != nil {
		t.Fatalf("clean dist: %v", err)
	}

	faults := dist.NewFaults().KillWorker(1, killRound)
	faulty, err := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithEngine(hybrid.EngineDist),
		hybrid.WithWorkers(2), hybrid.WithDistOptions(dist.WithFaults(faults))).APSP()
	if err != nil {
		t.Fatalf("dist with kill at round %d: %v", killRound, err)
	}

	st := faults.Stats()
	if st.Killed != 1 {
		t.Fatalf("fault plan killed %d workers, want 1 (round %d)", st.Killed, killRound)
	}
	if st.Respawns < 1 {
		t.Fatalf("coordinator recorded %d respawns, want >= 1", st.Respawns)
	}
	if !reflect.DeepEqual(clean.Dist, faulty.Dist) {
		t.Errorf("kill+replay run diverges from clean dist run (kill round %d)", killRound)
	}
	if clean.Metrics != faulty.Metrics {
		t.Errorf("kill+replay metrics differ from clean dist: %+v vs %+v", clean.Metrics, faulty.Metrics)
	}
	if !reflect.DeepEqual(oracle.Dist, faulty.Dist) {
		t.Errorf("kill+replay run diverges from legacy oracle (kill round %d)", killRound)
	}
	if oracle.Metrics != faulty.Metrics {
		t.Errorf("kill+replay metrics differ from legacy: %+v vs %+v", oracle.Metrics, faulty.Metrics)
	}
}

// TestDistFrameDropRetry injects transient frame drops into an SSSP run and
// checks the bounded-retry path delivers a result identical to the legacy
// oracle, with the drops actually consumed.
func TestDistFrameDropRetry(t *testing.T) {
	g := hybrid.PathGraph(30)
	oracle, err := hybrid.New(g, hybrid.WithSeed(7), hybrid.WithEngine(hybrid.EngineLegacy)).SSSP(0)
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}

	faults := dist.NewFaults().DropFrames(0, 2, 1).DropFrames(1, 6, 2)
	opts := dist.WithFaults(faults)
	opts.FrameTimeout = 200 * time.Millisecond // keep retries quick under test
	res, err := hybrid.New(g, hybrid.WithSeed(7), hybrid.WithEngine(hybrid.EngineDist),
		hybrid.WithWorkers(2), hybrid.WithDistOptions(opts)).SSSP(0)
	if err != nil {
		t.Fatalf("dist with drops: %v", err)
	}
	if st := faults.Stats(); st.Dropped != 3 {
		t.Fatalf("fault plan dropped %d frames, want 3", st.Dropped)
	}
	if !reflect.DeepEqual(oracle.Dist, res.Dist) {
		t.Errorf("dropped-frame run diverges from legacy oracle")
	}
	if oracle.Metrics != res.Metrics {
		t.Errorf("dropped-frame metrics differ: legacy %+v dist %+v", oracle.Metrics, res.Metrics)
	}
}
