package hybrid

import "repro/internal/graph"

// NextHops derives per-destination forwarding tables from an exact APSP
// result — the IP-routing application the paper's introduction motivates
// ("learning the topology of the local network which can be used for
// efficient IP-routing"). Entry [v][t] is the neighbor v forwards to on a
// shortest path toward t (-1 for t == v or unreachable). Ties break toward
// the smallest neighbor ID, so tables are deterministic and loop-free.
//
// The reconstruction lives in internal/graph so the resident query server
// (internal/serve, cmd/hybridserve) shares the exact same walk.
func NextHops(g *Graph, dist [][]int64) [][]int { return graph.NextHops(g, dist) }

// NextHops on an APSPResult: convenience accessor.
func (r *APSPResult) NextHops(g *Graph) [][]int { return NextHops(g, r.Dist) }

// FollowRoute walks the forwarding tables from s toward t and returns the
// node sequence, or nil if forwarding fails (loop or dead end). On tables
// from exact APSP the walk always realizes a shortest path.
func FollowRoute(tables [][]int, s, t int) []int { return graph.FollowRoute(tables, s, t) }

// PathWeight sums the edge weights along the node sequence path in g. It
// reports false when the path is empty or traverses a non-edge, so callers
// can distinguish "weight 0" from "not a path".
func PathWeight(g *Graph, path []int) (int64, bool) { return graph.PathWeight(g, path) }
