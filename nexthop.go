package hybrid

// NextHops derives per-destination forwarding tables from an exact APSP
// result — the IP-routing application the paper's introduction motivates
// ("learning the topology of the local network which can be used for
// efficient IP-routing"). Entry [v][t] is the neighbor v forwards to on a
// shortest path toward t (-1 for t == v or unreachable). Ties break toward
// the smallest neighbor ID, so tables are deterministic and loop-free.
func NextHops(g *Graph, dist [][]int64) [][]int {
	n := g.N()
	out := make([][]int, n)
	for v := 0; v < n; v++ {
		row := make([]int, n)
		for t := 0; t < n; t++ {
			row[t] = -1
			if t == v || dist[v][t] >= Inf {
				continue
			}
			for _, nb := range g.Neighbors(v) {
				if dist[nb.To][t] < Inf && nb.W+dist[nb.To][t] == dist[v][t] {
					if row[t] == -1 || nb.To < row[t] {
						row[t] = nb.To
					}
				}
			}
		}
		out[v] = row
	}
	return out
}

// NextHops on an APSPResult: convenience accessor.
func (r *APSPResult) NextHops(g *Graph) [][]int { return NextHops(g, r.Dist) }

// FollowRoute walks the forwarding tables from s toward t and returns the
// node sequence, or nil if forwarding fails (loop or dead end). On tables
// from exact APSP the walk always realizes a shortest path.
func FollowRoute(tables [][]int, s, t int) []int {
	path := []int{s}
	cur := s
	for cur != t {
		if len(path) > len(tables) {
			return nil // loop guard
		}
		next := tables[cur][t]
		if next < 0 {
			return nil
		}
		path = append(path, next)
		cur = next
	}
	return path
}
